//! Baseline controllers for experiment E3 (DESIGN.md).
//!
//! The paper motivates utility-driven management by contrast with (a)
//! schedulers that always privilege the interactive tier and queue batch
//! work FCFS, and (b) static partitioning of the cluster between workload
//! classes (its reference \[6\], Solaris Resource Manager-style). These two
//! controllers make that contrast measurable.

use slaq_placement::problem::{AppRequest, JobRequest, PlacementConfig, PlacementProblem};
use slaq_placement::{solve, Placement};
use slaq_sim::{ControlInputs, Controller, MetricsSink};
use slaq_types::{CpuMhz, NodeId};
use slaq_utility::UtilityOfCpu;

/// Transactional-first FCFS: applications always receive their **full**
/// demand (for maximum utility); jobs queue FCFS for whatever CPU and
/// memory remain, each at full speed, with no SLA awareness and no
/// suspension of running jobs.
#[derive(Debug, Clone, Default)]
pub struct TransactionalFirstController {
    /// Placement knobs (shared with the utility controller for fairness).
    pub placement: PlacementConfig,
}

impl Controller for TransactionalFirstController {
    fn control(&mut self, inputs: &ControlInputs<'_>, metrics: &mut MetricsSink) -> Placement {
        let now = inputs.now;
        // Apps demand their maximum-utility allocation outright.
        let apps: Vec<AppRequest> = inputs
            .apps
            .iter()
            .map(|a| {
                let demand = slaq_perfmodel::TransactionalModel::new(a.spec.clone(), a.lambda)
                    .map(|m| m.max_useful_cpu())
                    .unwrap_or(CpuMhz::ZERO);
                AppRequest {
                    id: a.id,
                    demand,
                    mem_per_instance: a.spec.mem_per_instance,
                    min_instances: a.spec.min_instances,
                    max_instances: a.spec.max_instances,
                    affinity: Vec::new(),
                }
            })
            .collect();
        // Jobs demand full speed; priority = submission order (FCFS):
        // older (lower id) first via a decreasing priority ramp.
        let jobs: Vec<JobRequest> = inputs
            .jobs
            .jobs()
            .iter()
            .filter(|j| j.is_active())
            .map(|j| JobRequest {
                id: j.id,
                demand: j.spec.max_speed,
                mem: j.spec.mem,
                running_on: match j.state {
                    slaq_jobs::JobState::Running { node } => Some(node),
                    _ => None,
                },
                affinity: j.state.node(),
                priority: f64::from(u32::MAX - j.id.raw()),
            })
            .collect();
        let trans_demand: CpuMhz = apps.iter().map(|a| a.demand).sum();
        let jobs_demand: CpuMhz = jobs.iter().map(|j| j.demand).sum();
        metrics.record("trans_demand", now, trans_demand.as_f64());
        metrics.record("jobs_demand", now, jobs_demand.as_f64());

        let problem = PlacementProblem {
            nodes: inputs.nodes.to_vec(),
            apps,
            jobs,
            config: PlacementConfig {
                // FCFS never preempts.
                evict_priority_gap: f64::INFINITY,
                ..self.placement
            },
        };
        solve(&problem, inputs.current).placement
    }
}

/// Static partitioning: the first `⌈fraction·N⌉` nodes belong to the
/// transactional tier, the rest to jobs; neither side ever crosses the
/// fence (the paper's reference \[6\] consolidation model).
#[derive(Debug, Clone)]
pub struct StaticPartitionController {
    /// Fraction of nodes reserved for the transactional tier, in (0, 1).
    pub trans_fraction: f64,
    /// Placement knobs.
    pub placement: PlacementConfig,
}

impl StaticPartitionController {
    /// Partition with the given transactional node fraction.
    pub fn new(trans_fraction: f64) -> Self {
        StaticPartitionController {
            trans_fraction: trans_fraction.clamp(0.05, 0.95),
            placement: PlacementConfig::default(),
        }
    }

    fn split(&self, n: usize) -> usize {
        ((n as f64 * self.trans_fraction).ceil() as usize).clamp(1, n.saturating_sub(1).max(1))
    }
}

impl Controller for StaticPartitionController {
    fn control(&mut self, inputs: &ControlInputs<'_>, _metrics: &mut MetricsSink) -> Placement {
        let k = self.split(inputs.nodes.len());
        let trans_nodes = &inputs.nodes[..k];
        let job_nodes = &inputs.nodes[k..];
        let fence: NodeId = job_nodes
            .first()
            .map(|n| n.id)
            .unwrap_or_else(|| NodeId::new(u32::MAX));

        // Solve the two partitions independently and merge.
        let apps: Vec<AppRequest> = inputs
            .apps
            .iter()
            .map(|a| {
                let demand = slaq_perfmodel::TransactionalModel::new(a.spec.clone(), a.lambda)
                    .map(|m| m.max_useful_cpu())
                    .unwrap_or(CpuMhz::ZERO);
                AppRequest {
                    id: a.id,
                    demand,
                    mem_per_instance: a.spec.mem_per_instance,
                    min_instances: a.spec.min_instances,
                    max_instances: a.spec.max_instances,
                    affinity: Vec::new(),
                }
            })
            .collect();
        let mut prev_trans = Placement::empty();
        let mut prev_jobs = Placement::empty();
        for (&app, slices) in &inputs.current.apps {
            for (&node, &cpu) in slices {
                if node < fence {
                    prev_trans.apps.entry(app).or_default().insert(node, cpu);
                }
            }
        }
        for (&job, &(node, cpu)) in &inputs.current.jobs {
            if node >= fence {
                prev_jobs.jobs.insert(job, (node, cpu));
            }
        }

        let trans_problem = PlacementProblem {
            nodes: trans_nodes.to_vec(),
            apps,
            jobs: vec![],
            config: self.placement,
        };
        let trans_part = solve(&trans_problem, &prev_trans).placement;

        let jobs: Vec<JobRequest> = inputs
            .jobs
            .jobs()
            .iter()
            .filter(|j| j.is_active())
            .map(|j| JobRequest {
                id: j.id,
                demand: j.spec.max_speed,
                mem: j.spec.mem,
                running_on: match j.state {
                    slaq_jobs::JobState::Running { node } if node >= fence => Some(node),
                    _ => None,
                },
                affinity: j.state.node().filter(|&n| n >= fence),
                priority: f64::from(u32::MAX - j.id.raw()),
            })
            .collect();
        let job_problem = PlacementProblem {
            nodes: job_nodes.to_vec(),
            apps: vec![],
            jobs,
            config: PlacementConfig {
                evict_priority_gap: f64::INFINITY,
                ..self.placement
            },
        };
        let job_part = solve(&job_problem, &prev_jobs).placement;

        let mut merged = trans_part;
        merged.jobs = job_part.jobs;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_jobs::JobSpec;
    use slaq_perfmodel::TransactionalSpec;
    use slaq_sim::{OverheadConfig, SimConfig, Simulator, TransactionalRuntime};
    use slaq_types::{AppId, ClusterSpec, MemMb, SimDuration, SimTime, Work};
    use slaq_utility::{CompletionGoal, ResponseTimeGoal};

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(4, 4, CpuMhz::new(3000.0), MemMb::new(4096))
    }

    fn cfg(horizon: f64) -> SimConfig {
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(horizon),
            overheads: OverheadConfig {
                start: SimDuration::ZERO,
                resume: SimDuration::ZERO,
                migrate: SimDuration::ZERO,
            },
            cap_transactional: false,
        }
    }

    fn app_spec() -> TransactionalSpec {
        TransactionalSpec {
            name: "shop".into(),
            service_per_request: Work::new(2000.0),
            rt_goal: ResponseTimeGoal::new(SimDuration::from_secs(0.5)).unwrap(),
            mem_per_instance: MemMb::new(1024),
            max_instances: 8,
            min_instances: 1,
            u_cap: 0.9,
        }
    }

    fn job(work_secs: f64, submit: f64) -> JobSpec {
        JobSpec {
            name: format!("b@{submit}"),
            total_work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::from_secs(submit),
                SimDuration::from_secs(work_secs),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    #[test]
    fn transactional_first_starves_jobs_under_app_pressure() {
        // App demand swallows the whole cluster; FCFS jobs crawl.
        let mut sim = Simulator::new(&cluster(), cfg(4000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(), Box::new(|_| 22.0), 0.5).unwrap(),
        );
        sim.add_arrivals((0..3).map(|_| (SimTime::ZERO, job(1500.0, 0.0))).collect());
        let report = sim
            .run(&mut TransactionalFirstController::default())
            .unwrap();
        // λ=22: offered 44 000, demand 84 000 > 48 000 cluster.
        // Utility-blind: app takes everything placeable; job targets
        // shrink to the scraps.
        let u = report.metrics.last("trans_utility").unwrap();
        assert!(u > -1.0);
        let job_alloc = report.metrics.last("jobs_alloc").unwrap_or(0.0);
        assert!(job_alloc < 6000.0, "jobs should be scraps: {job_alloc}");
    }

    #[test]
    fn transactional_first_lets_jobs_use_idle_capacity() {
        let mut sim = Simulator::new(&cluster(), cfg(4000.0));
        // A relaxed RT goal keeps the app's max-utility demand modest
        // (λc + c/(τ(1−u_cap)) = 4000 + 10 000 of the 48 000 cluster), so
        // the utility-blind baseline still leaves jobs plenty of room.
        let mut spec = app_spec();
        spec.rt_goal = ResponseTimeGoal::new(SimDuration::from_secs(2.0)).unwrap();
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), spec, Box::new(|_| 2.0), 0.5).unwrap(),
        );
        sim.add_arrivals((0..6).map(|_| (SimTime::ZERO, job(1000.0, 0.0))).collect());
        let report = sim
            .run(&mut TransactionalFirstController::default())
            .unwrap();
        assert_eq!(report.job_stats.completed, 6);
    }

    #[test]
    fn static_partition_respects_the_fence() {
        let mut ctrl = StaticPartitionController::new(0.5);
        let mut sim = Simulator::new(&cluster(), cfg(4000.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(), Box::new(|_| 8.0), 0.5).unwrap(),
        );
        sim.add_arrivals((0..5).map(|_| (SimTime::ZERO, job(1000.0, 0.0))).collect());
        sim.run(&mut ctrl).unwrap();
        // Instances only on nodes 0-1; jobs only on nodes 2-3.
        let p = sim.placement();
        for slices in p.apps.values() {
            for node in slices.keys() {
                assert!(node.raw() < 2, "instance crossed the fence: {node}");
            }
        }
        for &(node, _) in p.jobs.values() {
            assert!(node.raw() >= 2, "job crossed the fence: {node}");
        }
    }

    #[test]
    fn static_partition_wastes_idle_transactional_nodes() {
        // No transactional traffic at all: half the cluster sits idle
        // while jobs queue — the inefficiency the paper's approach fixes.
        let mut ctrl = StaticPartitionController::new(0.5);
        let mut sim = Simulator::new(&cluster(), cfg(2500.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(), Box::new(|_| 0.0), 0.5).unwrap(),
        );
        // 12 jobs of 2000 s: the 2 job-nodes fit 6 at a time, so the
        // second wave cannot finish inside the horizon even though half
        // the cluster is completely idle.
        sim.add_arrivals((0..12).map(|_| (SimTime::ZERO, job(2000.0, 0.0))).collect());
        let report = sim.run(&mut ctrl).unwrap();
        assert!(
            report.job_stats.completed <= 7,
            "fence should bottleneck jobs: {}",
            report.job_stats.completed
        );
        // The utility controller on the identical workload uses the idle
        // half and finishes (nearly) everything.
        let mut sim = Simulator::new(&cluster(), cfg(2500.0));
        sim.add_app(
            TransactionalRuntime::new(AppId::new(0), app_spec(), Box::new(|_| 0.0), 0.5).unwrap(),
        );
        sim.add_arrivals((0..12).map(|_| (SimTime::ZERO, job(2000.0, 0.0))).collect());
        let ours = sim
            .run(&mut crate::controller::UtilityController::default())
            .unwrap();
        assert!(
            ours.job_stats.completed >= 10,
            "utility controller should use the whole cluster: {}",
            ours.job_stats.completed
        );
    }

    #[test]
    fn split_is_clamped_sanely() {
        let c = StaticPartitionController::new(0.99);
        assert_eq!(c.split(4), 3);
        let c = StaticPartitionController::new(0.01);
        assert_eq!(c.split(4), 1);
        let c = StaticPartitionController::new(0.5);
        assert_eq!(c.split(1), 1);
    }
}
