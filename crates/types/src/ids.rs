//! Identifiers for nodes, transactional applications, long-running jobs,
//! and the unified *entity* abstraction used by the utility equalizer.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Raw index.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Raw index widened for slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_newtype!(
    /// A physical node (machine) in the cluster.
    NodeId,
    "node"
);
id_newtype!(
    /// A transactional (clustered web) application.
    AppId,
    "app"
);
id_newtype!(
    /// A long-running job.
    JobId,
    "job"
);
id_newtype!(
    /// A failure/locality zone (rack, availability zone, edge site). Nodes
    /// sharing a zone are solved together by the sharded placement engine.
    ZoneId,
    "zone"
);
id_newtype!(
    /// One shard of a partitioned placement problem. Shard ids are dense
    /// (`0..shard_count`), assigned per solve from zone labels or a fixed
    /// shard count by the sharded placement engine.
    ShardId,
    "shard"
);

/// An *entity* competing for CPU power in the utility equalizer.
///
/// The paper's algorithm "operates by continuously stealing resources from
/// the more satisfied applications to later be given to the less satisfied
/// applications", where "applications" spans both workload classes: each
/// transactional application and each long-running job is one entity with a
/// monotone utility-of-CPU curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EntityId {
    /// A transactional application.
    App(AppId),
    /// A long-running job.
    Job(JobId),
}

impl EntityId {
    /// `true` if this entity is a transactional application.
    #[inline]
    pub fn is_app(self) -> bool {
        matches!(self, EntityId::App(_))
    }

    /// `true` if this entity is a long-running job.
    #[inline]
    pub fn is_job(self) -> bool {
        matches!(self, EntityId::Job(_))
    }

    /// The application id, if this entity is one.
    #[inline]
    pub fn as_app(self) -> Option<AppId> {
        match self {
            EntityId::App(a) => Some(a),
            EntityId::Job(_) => None,
        }
    }

    /// The job id, if this entity is one.
    #[inline]
    pub fn as_job(self) -> Option<JobId> {
        match self {
            EntityId::Job(j) => Some(j),
            EntityId::App(_) => None,
        }
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityId::App(a) => write!(f, "{a}"),
            EntityId::Job(j) => write!(f, "{j}"),
        }
    }
}

impl From<AppId> for EntityId {
    fn from(a: AppId) -> Self {
        EntityId::App(a)
    }
}

impl From<JobId> for EntityId {
    fn from(j: JobId) -> Self {
        EntityId::Job(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(AppId::new(0).to_string(), "app0");
        assert_eq!(JobId::new(17).to_string(), "job17");
    }

    #[test]
    fn ids_index_widen() {
        assert_eq!(NodeId::new(25).index(), 25usize);
        assert_eq!(JobId::from(7u32).raw(), 7);
    }

    #[test]
    fn entity_classification() {
        let e: EntityId = AppId::new(1).into();
        assert!(e.is_app());
        assert!(!e.is_job());
        assert_eq!(e.as_app(), Some(AppId::new(1)));
        assert_eq!(e.as_job(), None);

        let e: EntityId = JobId::new(2).into();
        assert!(e.is_job());
        assert_eq!(e.as_job(), Some(JobId::new(2)));
        assert_eq!(e.to_string(), "job2");
    }

    #[test]
    fn entities_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(EntityId::App(AppId::new(1)));
        set.insert(EntityId::Job(JobId::new(1)));
        set.insert(EntityId::App(AppId::new(1)));
        assert_eq!(set.len(), 2);

        // Apps order before jobs (enum declaration order); same-kind by id.
        let mut v = vec![
            EntityId::Job(JobId::new(0)),
            EntityId::App(AppId::new(5)),
            EntityId::App(AppId::new(2)),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                EntityId::App(AppId::new(2)),
                EntityId::App(AppId::new(5)),
                EntityId::Job(JobId::new(0)),
            ]
        );
    }

    #[test]
    fn serde_roundtrip() {
        let e = EntityId::Job(JobId::new(9));
        let s = serde_json::to_string(&e).unwrap();
        let back: EntityId = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
        let n = NodeId::new(4);
        assert_eq!(serde_json::to_string(&n).unwrap(), "4");
    }
}
