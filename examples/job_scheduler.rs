//! Library-level usage without the simulator: drive the job manager,
//! hypothetical-utility equalizer and placement solver directly — the
//! building blocks a real control plane would embed.
//!
//! ```text
//! cargo run --example job_scheduler
//! ```

use slaq::prelude::*;
use slaq_placement::solve;
use std::collections::BTreeMap;

fn main() {
    let now = SimTime::ZERO;
    let mut manager = JobManager::new();

    // Submit a mixed bag of jobs: different lengths, same SLA shape.
    for (i, work_secs) in [3600.0, 7200.0, 1800.0, 10_800.0, 5400.0]
        .iter()
        .enumerate()
    {
        manager
            .submit(
                JobSpec {
                    name: format!("analytics-{i}"),
                    total_work: Work::from_power_secs(CpuMhz::new(3000.0), *work_secs),
                    max_speed: CpuMhz::new(3000.0),
                    mem: MemMb::new(1280),
                    goal: CompletionGoal::relative(
                        now,
                        SimDuration::from_secs(*work_secs),
                        1.25,
                        2.0,
                    )
                    .unwrap(),
                },
                now,
            )
            .unwrap();
    }

    // 1. Hypothetical utility: fluid equalization over a CPU budget.
    let budget = CpuMhz::new(9000.0); // three processors for five jobs
    let hypo = manager.hypothetical(now, budget, &EqualizeOptions::default());
    println!("== hypothetical utility over {budget} ==");
    println!(
        "average utility {:.3}, total demand {}",
        hypo.average_utility, hypo.total_demand
    );
    for a in &hypo.allocation.allocations {
        println!(
            "  {}: {:>8.1} MHz  → utility {:.3}",
            a.id,
            a.cpu.as_f64(),
            a.utility
        );
    }

    // 2. Realize those targets on a 2-node cluster.
    let nodes: Vec<NodeCapacity> = (0..2)
        .map(|i| NodeCapacity {
            id: NodeId::new(i),
            cpu: CpuMhz::new(6000.0),
            mem: MemMb::new(4096),
        })
        .collect();
    let job_requests: Vec<JobRequest> = manager
        .jobs()
        .iter()
        .map(|j| {
            let target = hypo.allocation.cpu_of(j.id).unwrap_or(CpuMhz::ZERO);
            JobRequest {
                id: j.id,
                demand: target,
                mem: j.spec.mem,
                running_on: None,
                affinity: None,
                priority: target.as_f64(),
            }
        })
        .collect();
    let problem = PlacementProblem {
        nodes,
        apps: vec![],
        jobs: job_requests,
        config: PlacementConfig::default(),
    };
    let outcome = solve(&problem, &Placement::empty());
    println!("\n== placement ==");
    let mut by_node: BTreeMap<NodeId, Vec<String>> = BTreeMap::new();
    for (&job, &(node, cpu)) in &outcome.placement.jobs {
        by_node
            .entry(node)
            .or_default()
            .push(format!("{job}@{:.0}MHz", cpu.as_f64()));
    }
    for (node, jobs) in &by_node {
        println!("  {node}: {}", jobs.join(", "));
    }
    if !outcome.unplaced_jobs.is_empty() {
        println!("  unplaced (stay queued): {:?}", outcome.unplaced_jobs);
    }
    println!("  changes: {}", outcome.changes.len());

    // 3. Start the placed jobs and advance an hour of wall-clock.
    for (&job, &(node, _)) in &outcome.placement.jobs.clone() {
        manager.job_mut(job).unwrap().start(node, now).unwrap();
    }
    let done = manager.advance_running(now, SimDuration::from_hours(1.0), |id| {
        outcome.placement.job_alloc(id)
    });
    println!("\nafter 1 h: {} jobs completed", done.len());
    let stats = manager.stats();
    println!(
        "running {}, pending {}, completed {}",
        stats.running, stats.pending, stats.completed
    );
}
