//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` in the offline registry):
//! supports non-generic named structs, tuple structs and enums with unit /
//! newtype / tuple / struct variants, plus `#[serde(transparent)]`. That is
//! the entire shape inventory of the slaq workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
        transparent: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip attributes and visibility; report whether `#[serde(transparent)]`
/// was among the attributes.
fn skip_meta(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut transparent = false;
    loop {
        if *i + 1 < tokens.len() && is_punct(&tokens[*i], '#') {
            if let TokenTree::Group(g) = &tokens[*i + 1] {
                if g.delimiter() == Delimiter::Bracket {
                    let s = g.stream().to_string();
                    if s.contains("serde") && s.contains("transparent") {
                        transparent = true;
                    }
                    *i += 2;
                    continue;
                }
            }
        }
        if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
            *i += 1;
            if *i < tokens.len() {
                if let TokenTree::Group(g) = &tokens[*i] {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            continue;
        }
        return transparent;
    }
}

/// Advance past a type, stopping after the top-level `,` (or at end).
/// Tracks `<...>` nesting, which token streams expose as plain puncts.
fn skip_type_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_meta(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected field name, got {:?}", tokens[i]);
        };
        fields.push(name.to_string());
        i += 1; // name
        assert!(is_punct(&tokens[i], ':'), "expected ':' after field name");
        i += 1; // colon
        skip_type_to_comma(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (k, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // A trailing comma does not open a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && k + 1 < tokens.len() => {
                count += 1
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_meta(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("expected variant name, got {:?}", tokens[i]);
        };
        let name = name.to_string();
        i += 1;
        let shape = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    i += 1;
                    Shape::Tuple(n)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    i += 1;
                    Shape::Named(fields)
                }
                _ => Shape::Unit,
            }
        } else {
            Shape::Unit
        };
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let transparent = skip_meta(&tokens, &mut i);
    let is_enum = if is_ident(&tokens[i], "struct") {
        false
    } else if is_ident(&tokens[i], "enum") {
        true
    } else {
        panic!(
            "derive target must be a struct or enum, got {:?}",
            tokens[i]
        );
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("expected type name");
    };
    let name = name.to_string();
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde stand-in derive does not support generic types ({name})");
    }
    if is_enum {
        let TokenTree::Group(g) = &tokens[i] else {
            panic!("expected enum body");
        };
        Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        Item::Struct {
            name,
            shape,
            transparent,
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct {
            name,
            shape,
            transparent,
        } => {
            let body = match shape {
                Shape::Named(fields) => {
                    if *transparent && fields.len() == 1 {
                        format!("::serde::Serialize::to_value(&self.{})", fields[0])
                    } else {
                        let mut entries = String::new();
                        for f in fields {
                            entries.push_str(&format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                            ));
                        }
                        format!("::serde::Value::Obj(vec![{entries}])")
                    }
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let mut entries = String::new();
                    for k in 0..*n {
                        entries.push_str(&format!("::serde::Serialize::to_value(&self.{k}),"));
                    }
                    format!("::serde::Value::Arr(vec![{entries}])")
                }
                Shape::Unit => "::serde::Value::Null".to_string(),
            };
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            ));
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Arr(vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(",");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}{{{binds}}} => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Obj(vec![{}]))]),",
                            items.join(",")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            ));
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct {
            name,
            shape,
            transparent,
        } => {
            let body = match shape {
                Shape::Named(fields) => {
                    if *transparent && fields.len() == 1 {
                        format!(
                            "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                            fields[0]
                        )
                    } else {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::obj_get(v, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!("Ok({name} {{ {} }})", inits.join(","))
                    }
                }
                Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
                Shape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "match v {{ ::serde::Value::Arr(items) if items.len() == {n} => Ok({name}({})), other => Err(::serde::DeError::msg(format!(\"expected {n}-element array for {name}, got {{other:?}}\"))) }}",
                        inits.join(",")
                    )
                }
                Shape::Unit => format!("{{ let _ = v; Ok({name}) }}"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),")),
                    Shape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => match inner {{ ::serde::Value::Arr(items) if items.len() == {n} => Ok({name}::{vn}({})), other => Err(::serde::DeError::msg(format!(\"bad payload for {name}::{vn}: {{other:?}}\"))) }},",
                            inits.join(",")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::obj_get(inner, \"{f}\")?)?"
                                )
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                            inits.join(",")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => Err(::serde::DeError::msg(format!(\"unknown variant {{other}} for {name}\"))) }}, \
                 ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ let (key, inner) = &pairs[0]; match key.as_str() {{ {keyed_arms} other => Err(::serde::DeError::msg(format!(\"unknown variant {{other}} for {name}\"))) }} }}, \
                 other => Err(::serde::DeError::msg(format!(\"expected variant encoding for {name}, got {{other:?}}\"))) }} }} }}"
            )
        }
    }
}

/// Derive `Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `Deserialize` (value-tree raising).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}
