//! Solver bench gate: measure the warm-solve hot paths plus the
//! end-to-end control-cycle latency (snapshot → solve → actuate, sync
//! vs. overlapped pipeline), persist the numbers to a tracked baseline
//! file, and fail CI on regressions.
//!
//! ```text
//! # measure and print
//! cargo run --release -p slaq-experiments --bin bench_gate
//!
//! # (re)write the tracked baseline
//! cargo run --release -p slaq-experiments --bin bench_gate -- --update BENCH_baseline.json
//!
//! # CI: fail when any warm solve regresses by more than the tolerance
//! cargo run --release -p slaq-experiments --bin bench_gate -- --check BENCH_baseline.json
//! ```
//!
//! The gate compares medians (robust against scheduler noise) with
//! `BENCH_GATE_TOLERANCE` (default 0.25 = +25 %) of slack, judged both
//! raw and after dividing out the run's geometric-mean ratio to the
//! baseline — a machine-speed normalizer, so a uniformly slower CI
//! runner passes while a single series regressing against its siblings
//! fails. A same-run hardware-independent invariant (the heap-backed
//! warm solve beats the linear-scan baseline, ≥ 1.3× at 1000n/6000j)
//! backs the absolute numbers up.

use serde::{Deserialize, Serialize};
use slaq_core::{PipelineSpec, ScenarioSpec};
use slaq_experiments::sweeps::synthetic_problem;
use slaq_placement::{
    CandidateEngine, Placement, PlacementProblem, ShardPlan, ShardedSolver, Solver,
};
use std::time::Instant;

/// One measured series.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Series name (shape + engine).
    name: String,
    /// Median wall time of one warm solve, microseconds.
    micros: f64,
}

/// The tracked baseline file's schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchBaseline {
    /// All gated series.
    entries: Vec<BenchEntry>,
}

/// Prepare the steady-state re-solve inputs for a shape: the cold
/// solution with every job marked running becomes the previous placement.
fn warm_inputs(nodes: u32, jobs: u32) -> (PlacementProblem, Placement) {
    let problem = synthetic_problem(nodes, jobs, 1);
    let cold = slaq_placement::solve(&problem, &Placement::empty());
    let mut warm = problem;
    for j in &mut warm.jobs {
        j.running_on = cold.placement.job_node(j.id);
    }
    (warm, cold.placement)
}

/// Median wall time (µs) of `solve` after `warmup` priming calls.
fn measure(mut solve: impl FnMut() -> usize, warmup: usize, samples: usize) -> f64 {
    for _ in 0..warmup {
        std::hint::black_box(solve());
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(solve());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn run_benches() -> Vec<BenchEntry> {
    let shapes: &[(u32, u32)] = &[(100, 600), (500, 3000), (1000, 6000)];
    let mut entries = Vec::new();
    for &(nodes, jobs) in shapes {
        let (warm, prev) = warm_inputs(nodes, jobs);
        let mut global = Solver::new();
        global.solve(&warm, &prev);
        let micros = measure(|| global.solve(&warm, &prev).changes.len(), 3, 30);
        entries.push(BenchEntry {
            name: format!("warm_global_{nodes}n_{jobs}j"),
            micros,
        });
        // Heap-vs-scan: the same warm solve through the pre-heap linear
        // scans, at the shapes where the candidate heap is meant to pay
        // (its win is pinned by a same-run invariant below).
        if nodes >= 500 {
            let mut scan = Solver::with_engine(CandidateEngine::Scan);
            scan.solve(&warm, &prev);
            let micros = measure(|| scan.solve(&warm, &prev).changes.len(), 3, 30);
            entries.push(BenchEntry {
                name: format!("warm_scan_{nodes}n_{jobs}j"),
                micros,
            });
        }
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(8), 16);
        sharded.solve(&warm, &prev);
        let micros = measure(|| sharded.solve(&warm, &prev).changes.len(), 3, 30);
        entries.push(BenchEntry {
            name: format!("warm_sharded8_{nodes}n_{jobs}j"),
            micros,
        });
    }
    entries.extend(cycle_latency_entries());
    entries
}

/// End-to-end control-cycle latency (snapshot → solve → actuate) through
/// the full simulator, per pipeline mode: median over whole short runs
/// of `paper-small`, divided by the cycle count. Unlike the warm-solve
/// medians above, this covers the entire control plane — sensing,
/// snapshot capture, the solve, reconciliation and enactment — so a
/// regression anywhere in the cycle path trips the same ±25 % gate.
fn cycle_latency_entries() -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for (label, mode) in [
        ("sync", PipelineSpec::Sync),
        ("overlap1", PipelineSpec::Overlap { latency_cycles: 1 }),
    ] {
        let mut spec = ScenarioSpec::preset("paper-small").expect("preset exists");
        spec.controller.pipeline = mode;
        spec.timing.cap_to_cycles(10);
        let scenario = spec.materialize().expect("preset is valid");
        let mut times: Vec<f64> = (0..7)
            .map(|_| {
                let mut controller = scenario.controller();
                let mut sim = scenario.build().expect("preset builds");
                let start = Instant::now();
                let report = sim.run(controller.as_mut()).expect("preset runs");
                start.elapsed().as_secs_f64() * 1e6 / report.cycles.max(1) as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        entries.push(BenchEntry {
            name: format!("cycle_{label}_paper_small"),
            micros: times[times.len() / 2],
        });
    }
    entries
}

fn print_table(entries: &[BenchEntry], baseline: Option<&BenchBaseline>) {
    println!(
        "{:<32} {:>12} {:>12} {:>8}",
        "series", "now (µs)", "base (µs)", "ratio"
    );
    for e in entries {
        let base = baseline.and_then(|b| b.entries.iter().find(|x| x.name == e.name));
        match base {
            Some(b) if b.micros > 0.0 => println!(
                "{:<32} {:>12.1} {:>12.1} {:>8.2}",
                e.name,
                e.micros,
                b.micros,
                e.micros / b.micros
            ),
            _ => println!("{:<32} {:>12.1} {:>12} {:>8}", e.name, e.micros, "-", "-"),
        }
    }
}

/// Hardware-independent invariants, compared within the *same* run on
/// the *same* machine (unlike the baseline medians, which were recorded
/// on whatever box last ran `--update`): the heap-backed warm solve must
/// beat the linear-scan baseline — by ≥ 1.3× at the 1000n/6000j shape,
/// and outright at 500n/3000j. This holds regardless of how fast the
/// runner is, so it keeps teeth even when absolute numbers drift with
/// hardware.
///
/// (The pre-heap invariant — sharded beats global at 500n+ — retired
/// with the candidate heaps: once per-job node selection is `O(log N)`,
/// the global solve at these shapes is faster than eight lanes plus
/// merge/rebalance overhead under the *sequential* rayon stand-in.
/// Sharding's win returns with real thread parallelism; until then the
/// sharded series are still gated against their baseline medians above.)
fn relative_invariants_hold(entries: &[BenchEntry]) -> bool {
    let find = |name: &str| entries.iter().find(|e| e.name == name).map(|e| e.micros);
    let mut ok = true;
    for (nodes, jobs, speedup) in [(500u32, 3000u32, 1.0), (1000, 6000, 1.3)] {
        let heap = find(&format!("warm_global_{nodes}n_{jobs}j"));
        let scan = find(&format!("warm_scan_{nodes}n_{jobs}j"));
        if let (Some(h), Some(s)) = (heap, scan) {
            if h * speedup > s {
                eprintln!(
                    "FAIL heap {nodes}n_{jobs}j: {h:.1} µs not {speedup}x faster than \
                     scan {s:.1} µs"
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = run_benches();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("--update"), Some(path)) => {
            let baseline = BenchBaseline {
                entries: entries.clone(),
            };
            let json = serde_json::to_string_pretty(&baseline).expect("serializes");
            std::fs::write(path, json + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            print_table(&entries, None);
            println!("baseline written to {path}");
        }
        (Some("--check"), Some(path)) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {path}: {e} (run --update first)");
                std::process::exit(1);
            });
            let baseline: BenchBaseline = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(1);
            });
            let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.25);
            print_table(&entries, Some(&baseline));
            // Machine-speed normalizer: the geometric mean of now/base
            // across all series. A slower (or faster) runner inflates
            // every series together, moving the geomean with them; a
            // genuine regression moves one series *against* the rest. A
            // series fails only when it exceeds the tolerance both
            // absolutely and after dividing out the geomean, so the gate
            // survives hardware churn without losing its teeth.
            let ratios: Vec<f64> = entries
                .iter()
                .filter_map(|e| {
                    baseline
                        .entries
                        .iter()
                        .find(|b| b.name == e.name && b.micros > 0.0)
                        .map(|b| e.micros / b.micros)
                })
                .collect();
            let geomean = if ratios.is_empty() {
                1.0
            } else {
                (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
            };
            let mut failed = false;
            // A high geomean is either slower hardware or a regression in
            // the shared solver core that inflated every series together
            // — indistinguishable from wall time alone. Warn by default
            // so hardware churn doesn't hard-fail; BENCH_GATE_STRICT=1
            // (for baselines known to come from this machine class) turns
            // it into a failure.
            if geomean > 1.0 + tolerance {
                let strict = std::env::var("BENCH_GATE_STRICT").is_ok_and(|v| v == "1");
                eprintln!(
                    "{} run is uniformly {:.2}x the baseline: slower hardware, or a \
                     regression in the shared solver core (re-record with --update on \
                     this machine to tell them apart)",
                    if strict { "FAIL" } else { "WARN" },
                    geomean
                );
                failed |= strict;
            }
            for e in &entries {
                match baseline.entries.iter().find(|b| b.name == e.name) {
                    None => {
                        eprintln!("FAIL {}: not in baseline (run --update)", e.name);
                        failed = true;
                    }
                    Some(b)
                        if e.micros > b.micros * (1.0 + tolerance)
                            && e.micros / b.micros > geomean * (1.0 + tolerance) =>
                    {
                        eprintln!(
                            "FAIL {}: {:.1} µs vs baseline {:.1} µs (> +{:.0}% raw and \
                             machine-normalized; run geomean ratio {:.2})",
                            e.name,
                            e.micros,
                            b.micros,
                            tolerance * 100.0,
                            geomean
                        );
                        failed = true;
                    }
                    Some(_) => {}
                }
            }
            if !relative_invariants_hold(&entries) {
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
            println!("bench gate passed (tolerance +{:.0}%)", tolerance * 100.0);
        }
        (None, _) => print_table(&entries, None),
        _ => {
            eprintln!("usage: bench_gate [--update <baseline.json> | --check <baseline.json>]");
            std::process::exit(2);
        }
    }
}
