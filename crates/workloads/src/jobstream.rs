//! Turning arrival streams into concrete job specifications.

use crate::arrivals::{PoissonArrivals, RateSchedule};
use serde::{Deserialize, Serialize};
use slaq_jobs::JobSpec;
use slaq_types::{CpuMhz, MemMb, SimTime, Work};
use slaq_utility::CompletionGoal;

/// Template all jobs in a stream share — the paper's evaluation uses 800
/// *identical* jobs, differing only in submission time (and hence SLA
/// anchor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTemplate {
    /// Prefix for generated job names (`"batch-17"` etc.).
    pub name_prefix: String,
    /// Total CPU work per job.
    pub work: Work,
    /// Maximum useful speed (one processor in the paper).
    pub max_speed: CpuMhz,
    /// VM memory footprint.
    pub mem: MemMb,
    /// Goal completion at `goal_factor × fastest_runtime` after
    /// submission (≥ 1).
    pub goal_factor: f64,
    /// Utility floor reached at `exhausted_factor × fastest_runtime`
    /// (≥ `goal_factor`).
    pub exhausted_factor: f64,
}

impl JobTemplate {
    /// Instantiate the template for a submission at `submit`.
    pub fn spec_at(&self, submit: SimTime, index: usize) -> Option<JobSpec> {
        let fastest = slaq_types::SimDuration::from_secs(self.work.secs_at(self.max_speed));
        let goal =
            CompletionGoal::relative(submit, fastest, self.goal_factor, self.exhausted_factor)?;
        Some(JobSpec {
            name: format!("{}-{index}", self.name_prefix),
            total_work: self.work,
            max_speed: self.max_speed,
            mem: self.mem,
            goal,
        })
    }
}

/// Generate a stream of `(submission_instant, spec)` pairs: `count` jobs
/// with exponential inter-arrivals following `schedule`, truncated at
/// `horizon` (jobs that would arrive later are dropped — the experiment
/// window simply ends).
pub fn generate_job_stream(
    template: &JobTemplate,
    schedule: RateSchedule,
    count: usize,
    horizon: SimTime,
    seed: u64,
) -> Vec<(SimTime, JobSpec)> {
    PoissonArrivals::new(schedule, count, seed)
        .take_while(|&t| t <= horizon)
        .enumerate()
        .filter_map(|(i, t)| template.spec_at(t, i).map(|s| (t, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's job: 4 h at one 3000 MHz processor, 3 per node by
    /// memory.
    pub(crate) fn paper_template() -> JobTemplate {
        JobTemplate {
            name_prefix: "batch".into(),
            work: Work::from_power_secs(CpuMhz::new(3000.0), 14_400.0),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal_factor: 1.25,
            exhausted_factor: 2.0,
        }
    }

    #[test]
    fn template_anchors_goal_at_submission() {
        let t = paper_template();
        let spec = t.spec_at(SimTime::from_secs(1000.0), 3).unwrap();
        assert_eq!(spec.name, "batch-3");
        assert_eq!(spec.goal.earliest.as_secs(), 1000.0 + 14_400.0);
        assert_eq!(spec.goal.goal.as_secs(), 1000.0 + 18_000.0);
        assert_eq!(spec.goal.exhausted.as_secs(), 1000.0 + 28_800.0);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn template_rejects_bad_factors() {
        let mut t = paper_template();
        t.goal_factor = 0.5;
        assert!(t.spec_at(SimTime::ZERO, 0).is_none());
    }

    #[test]
    fn stream_respects_count_and_horizon() {
        let t = paper_template();
        let sched = RateSchedule::constant(260.0).unwrap();
        let stream = generate_job_stream(&t, sched, 800, SimTime::from_secs(72_000.0), 42);
        // ~72 000 / 260 ≈ 277 arrivals fit the window.
        assert!(stream.len() > 200 && stream.len() < 360, "{}", stream.len());
        assert!(stream.iter().all(|(t, _)| t.as_secs() <= 72_000.0));
        // Identical jobs: same work/memory everywhere.
        assert!(stream
            .iter()
            .all(|(_, s)| s.total_work == t.work && s.mem == t.mem));
        // Submission-anchored goals differ.
        assert_ne!(stream[0].1.goal.goal, stream[1].1.goal.goal);
    }

    #[test]
    fn short_horizon_truncates_stream() {
        let t = paper_template();
        let sched = RateSchedule::constant(260.0).unwrap();
        let stream = generate_job_stream(&t, sched, 800, SimTime::from_secs(2600.0), 42);
        assert!(stream.len() < 30);
    }

    #[test]
    fn stream_is_reproducible() {
        let t = paper_template();
        let sched = RateSchedule::constant(100.0).unwrap();
        let a = generate_job_stream(&t, sched.clone(), 50, SimTime::from_secs(1e6), 5);
        let b = generate_job_stream(&t, sched, 50, SimTime::from_secs(1e6), 5);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.0 == y.0));
    }
}
