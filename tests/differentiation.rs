//! E8: service differentiation — the paper's abstract promises
//! "service differentiation based on high-level performance goals".
//! Gold-class jobs (importance 2) on a contended cluster must come out
//! systematically better than bronze-class jobs (importance 1) submitted
//! at the same instants with identical SLAs.

use slaq::prelude::*;
use slaq_core::controller::ControllerConfig;
use std::collections::BTreeMap;

fn job(i: u32, name: &str) -> JobSpec {
    JobSpec {
        name: format!("{name}-{i}"),
        total_work: Work::from_power_secs(CpuMhz::new(3000.0), 2000.0),
        max_speed: CpuMhz::new(3000.0),
        mem: MemMb::new(1280),
        goal: CompletionGoal::relative(SimTime::ZERO, SimDuration::from_secs(2000.0), 1.25, 3.0)
            .unwrap(),
    }
}

fn run(importance: BTreeMap<EntityId, f64>) -> (f64, f64) {
    // 2 nodes: 6 memory slots for 8 jobs → contention on both CPU & slots.
    let cluster = ClusterSpec::homogeneous(2, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let mut sim = Simulator::new(
        &cluster,
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(9000.0),
            overheads: OverheadConfig {
                start: SimDuration::ZERO,
                resume: SimDuration::ZERO,
                migrate: SimDuration::ZERO,
            },
            cap_transactional: false,
        },
    );
    // Gold jobs get even ids, bronze odd — all submitted at t=0.
    let arrivals: Vec<(SimTime, JobSpec)> = (0..8)
        .map(|i| {
            let name = if i % 2 == 0 { "gold" } else { "bronze" };
            (SimTime::ZERO, job(i, name))
        })
        .collect();
    sim.add_arrivals(arrivals);
    let mut controller = UtilityController::new(ControllerConfig {
        importance,
        ..Default::default()
    });
    sim.run(&mut controller).unwrap();

    let mut gold = Vec::new();
    let mut bronze = Vec::new();
    for j in sim.jobs().jobs() {
        let u = j
            .achieved_utility
            .unwrap_or_else(|| j.spec.goal.utility_at(SimTime::NEVER));
        if j.id.raw() % 2 == 0 {
            gold.push(u);
        } else {
            bronze.push(u);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&gold), mean(&bronze))
}

#[test]
fn gold_jobs_beat_bronze_under_importance_weights() {
    let mut importance = BTreeMap::new();
    for i in 0..8u32 {
        if i % 2 == 0 {
            importance.insert(EntityId::Job(JobId::new(i)), 2.0);
        }
    }
    let (gold, bronze) = run(importance);
    assert!(
        gold > bronze + 0.1,
        "gold {gold} should clearly beat bronze {bronze}"
    );
}

#[test]
fn without_weights_classes_are_statistically_equal() {
    let (gold, bronze) = run(BTreeMap::new());
    assert!(
        (gold - bronze).abs() < 0.12,
        "unweighted classes should tie: gold {gold} vs bronze {bronze}"
    );
}

#[test]
fn weights_do_not_change_total_throughput_materially() {
    let mut importance = BTreeMap::new();
    for i in 0..8u32 {
        if i % 2 == 0 {
            importance.insert(EntityId::Job(JobId::new(i)), 2.0);
        }
    }
    let (g1, b1) = run(importance);
    let (g2, b2) = run(BTreeMap::new());
    // Differentiation redistributes utility, it does not create it.
    let sum_w = g1 + b1;
    let sum_u = g2 + b2;
    assert!(
        (sum_w - sum_u).abs() < 0.25,
        "aggregate utility should be comparable: {sum_w} vs {sum_u}"
    );
}
