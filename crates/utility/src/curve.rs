//! Monotone, continuous piecewise-linear curves with exact inverses.
//!
//! Every utility function in the system — utility of completion time,
//! utility of response time, utility of allocated CPU — is represented (or
//! tabulated) as a [`PiecewiseLinear`]. Monotonicity is what makes the
//! equalizer's inverse queries ("how much CPU buys utility *u*?")
//! well-defined, and the paper explicitly restricts itself to monotonic and
//! continuous utility functions.

use serde::{Deserialize, Serialize};
use slaq_types::fcmp;

/// Direction of monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Monotonicity {
    /// y never decreases as x grows (e.g. utility of allocated CPU).
    NonDecreasing,
    /// y never increases as x grows (e.g. utility of completion time).
    NonIncreasing,
    /// Constant curves are both; we track them separately so inverse
    /// queries can answer conservatively.
    Constant,
}

/// A continuous piecewise-linear function defined by breakpoints
/// `(x_0, y_0), …, (x_k, y_k)` with strictly increasing `x_i`.
///
/// Evaluation clamps outside `[x_0, x_k]` (the curve is extended by
/// constants), which matches how utility saturates below/above the
/// modelled operating range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
    mono: Monotonicity,
}

impl PiecewiseLinear {
    /// Build from breakpoints. Requirements:
    ///
    /// * at least one point;
    /// * `x` strictly increasing, all values finite;
    /// * `y` monotone (non-decreasing or non-increasing).
    ///
    /// Returns `None` if any requirement is violated.
    pub fn new(points: Vec<(f64, f64)>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        for &(x, y) in &points {
            if !x.is_finite() || !y.is_finite() {
                return None;
            }
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        let mut nondec = true;
        let mut noninc = true;
        for w in points.windows(2) {
            if w[1].1 < w[0].1 {
                nondec = false;
            }
            if w[1].1 > w[0].1 {
                noninc = false;
            }
        }
        let mono = match (nondec, noninc) {
            (true, true) => Monotonicity::Constant,
            (true, false) => Monotonicity::NonDecreasing,
            (false, true) => Monotonicity::NonIncreasing,
            (false, false) => return None,
        };
        Some(PiecewiseLinear { points, mono })
    }

    /// A constant curve.
    pub fn constant(y: f64) -> Self {
        PiecewiseLinear {
            points: vec![(0.0, y)],
            mono: Monotonicity::Constant,
        }
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Monotonicity direction.
    pub fn monotonicity(&self) -> Monotonicity {
        self.mono
    }

    /// Smallest breakpoint x.
    pub fn x_min(&self) -> f64 {
        self.points[0].0
    }

    /// Largest breakpoint x.
    pub fn x_max(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Minimum attained y.
    pub fn y_min(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum attained y.
    pub fn y_max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Evaluate at `x` (constant extension outside the breakpoint range).
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts.len() - 1;
        if x >= pts[last].0 {
            return pts[last].1;
        }
        // Binary search for the segment containing x.
        let idx = pts.partition_point(|p| p.0 <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// For a **non-decreasing** curve: the smallest `x` with
    /// `eval(x) ≥ y`, or `None` if `y` exceeds the maximum.
    ///
    /// For `y` at or below the minimum this returns `x_min` (the curve may
    /// already satisfy `y` at any smaller x thanks to constant extension,
    /// but `x_min` is the smallest *modelled* input — callers treat values
    /// below it as "free").
    pub fn inverse_min_x(&self, y: f64) -> Option<f64> {
        match self.mono {
            Monotonicity::NonDecreasing => {}
            Monotonicity::Constant => {
                return if y <= self.points[0].1 {
                    Some(self.x_min())
                } else {
                    None
                };
            }
            Monotonicity::NonIncreasing => return None,
        }
        let pts = &self.points;
        if y > pts[pts.len() - 1].1 {
            return None;
        }
        if y <= pts[0].1 {
            return Some(pts[0].0);
        }
        // First breakpoint with y_i >= y.
        let idx = pts.partition_point(|p| p.1 < y);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        if (y1 - y0).abs() < f64::EPSILON {
            return Some(x0);
        }
        let t = (y - y0) / (y1 - y0);
        Some(x0 + t * (x1 - x0))
    }

    /// For a **non-increasing** curve: the largest `x` with
    /// `eval(x) ≥ y`, or `None` if `y` exceeds the maximum. For `y` at or
    /// below the minimum returns `x_max`.
    pub fn inverse_max_x(&self, y: f64) -> Option<f64> {
        match self.mono {
            Monotonicity::NonIncreasing => {}
            Monotonicity::Constant => {
                return if y <= self.points[0].1 {
                    Some(self.x_max())
                } else {
                    None
                };
            }
            Monotonicity::NonDecreasing => return None,
        }
        let pts = &self.points;
        if y > pts[0].1 {
            return None;
        }
        let last = pts.len() - 1;
        if y <= pts[last].1 {
            return Some(pts[last].0);
        }
        // Last breakpoint with y_i >= y: partition on descending y.
        let idx = pts.partition_point(|p| p.1 >= y);
        // idx >= 1 because pts[0].1 >= y; idx <= last because pts[last].1 < y.
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        if (y1 - y0).abs() < f64::EPSILON {
            return Some(x1);
        }
        let t = (y - y0) / (y1 - y0);
        Some(x0 + t * (x1 - x0))
    }

    /// Compose with an affine transform of the *input*:
    /// returns the curve `x ↦ eval(a·x + b)` tabulated on transformed
    /// breakpoints. Requires `a != 0`.
    pub fn precompose_affine(&self, a: f64, b: f64) -> Option<PiecewiseLinear> {
        if a == 0.0 || !a.is_finite() || !b.is_finite() {
            return None;
        }
        let mut pts: Vec<(f64, f64)> = self.points.iter().map(|&(x, y)| ((x - b) / a, y)).collect();
        if a < 0.0 {
            pts.reverse();
        }
        PiecewiseLinear::new(pts)
    }

    /// Pointwise scale of the output: `x ↦ s · eval(x)`.
    pub fn scale_y(&self, s: f64) -> Option<PiecewiseLinear> {
        if !s.is_finite() {
            return None;
        }
        let mut pts: Vec<(f64, f64)> = self.points.iter().map(|&(x, y)| (x, s * y)).collect();
        if s < 0.0 {
            // Monotonicity flips; PiecewiseLinear::new re-derives it.
            pts.sort_by(|a, b| fcmp(a.0, b.0));
        }
        PiecewiseLinear::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp() -> PiecewiseLinear {
        // 0 at x<=0, 1 at x>=10, linear between.
        PiecewiseLinear::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(PiecewiseLinear::new(vec![]).is_none());
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]).is_none()); // dup x
        assert!(PiecewiseLinear::new(vec![(1.0, 0.0), (0.0, 1.0)]).is_none()); // unsorted
        assert!(PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]).is_none()); // not monotone
        assert!(PiecewiseLinear::new(vec![(f64::NAN, 0.0)]).is_none());
        assert!(PiecewiseLinear::new(vec![(0.0, f64::INFINITY)]).is_none());
    }

    #[test]
    fn classifies_monotonicity() {
        assert_eq!(ramp().monotonicity(), Monotonicity::NonDecreasing);
        let dec = PiecewiseLinear::new(vec![(0.0, 1.0), (5.0, 0.0)]).unwrap();
        assert_eq!(dec.monotonicity(), Monotonicity::NonIncreasing);
        assert_eq!(
            PiecewiseLinear::constant(0.5).monotonicity(),
            Monotonicity::Constant
        );
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let r = ramp();
        assert_eq!(r.eval(-5.0), 0.0);
        assert_eq!(r.eval(0.0), 0.0);
        assert_eq!(r.eval(5.0), 0.5);
        assert_eq!(r.eval(10.0), 1.0);
        assert_eq!(r.eval(100.0), 1.0);
    }

    #[test]
    fn eval_handles_multi_segment_curves() {
        // A job-style utility of completion time: 1.0 until the goal,
        // then decaying to 0 and further to -0.5.
        let u = PiecewiseLinear::new(vec![(0.0, 1.0), (100.0, 1.0), (200.0, 0.0), (400.0, -0.5)])
            .unwrap();
        assert_eq!(u.eval(50.0), 1.0);
        assert_eq!(u.eval(150.0), 0.5);
        assert_eq!(u.eval(300.0), -0.25);
        assert_eq!(u.eval(1000.0), -0.5);
        assert_eq!(u.y_min(), -0.5);
        assert_eq!(u.y_max(), 1.0);
    }

    #[test]
    fn inverse_min_x_on_nondecreasing() {
        let r = ramp();
        assert_eq!(r.inverse_min_x(0.5), Some(5.0));
        assert_eq!(r.inverse_min_x(0.0), Some(0.0));
        assert_eq!(r.inverse_min_x(-1.0), Some(0.0));
        assert_eq!(r.inverse_min_x(1.0), Some(10.0));
        assert_eq!(r.inverse_min_x(1.01), None);
    }

    #[test]
    fn inverse_min_x_skips_flat_segments() {
        let u =
            PiecewiseLinear::new(vec![(0.0, 0.0), (5.0, 0.5), (10.0, 0.5), (20.0, 1.0)]).unwrap();
        // Utility 0.5 is first reached at x=5 even though it holds until 10.
        assert_eq!(u.inverse_min_x(0.5), Some(5.0));
        assert_eq!(u.inverse_min_x(0.75), Some(15.0));
    }

    #[test]
    fn inverse_max_x_on_nonincreasing() {
        let d = PiecewiseLinear::new(vec![(0.0, 1.0), (100.0, 1.0), (200.0, 0.0)]).unwrap();
        // Latest time still achieving utility >= 1.0 is x=100.
        assert_eq!(d.inverse_max_x(1.0), Some(100.0));
        assert_eq!(d.inverse_max_x(0.5), Some(150.0));
        assert_eq!(d.inverse_max_x(0.0), Some(200.0));
        assert_eq!(d.inverse_max_x(-0.5), Some(200.0));
        assert_eq!(d.inverse_max_x(1.5), None);
    }

    #[test]
    fn inverse_direction_mismatch_returns_none() {
        assert_eq!(ramp().inverse_max_x(0.5), None);
        let d = PiecewiseLinear::new(vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert_eq!(d.inverse_min_x(0.5), None);
    }

    #[test]
    fn constant_curve_inverses() {
        let c = PiecewiseLinear::constant(0.3);
        assert_eq!(c.inverse_min_x(0.3), Some(0.0));
        assert_eq!(c.inverse_min_x(0.4), None);
        assert_eq!(c.inverse_max_x(0.2), Some(0.0));
    }

    #[test]
    fn precompose_affine_shifts_input() {
        let r = ramp();
        // g(x) = r(x - 100): ramp starts at 100.
        let g = r.precompose_affine(1.0, -100.0).unwrap();
        assert_eq!(g.eval(100.0), 0.0);
        assert_eq!(g.eval(105.0), 0.5);
        // Negative slope flips direction.
        let h = r.precompose_affine(-1.0, 10.0).unwrap();
        assert_eq!(h.monotonicity(), Monotonicity::NonIncreasing);
        assert!((h.eval(5.0) - 0.5).abs() < 1e-12);
        assert!(r.precompose_affine(0.0, 1.0).is_none());
    }

    #[test]
    fn scale_y_scales_and_flips() {
        let r = ramp();
        let half = r.scale_y(0.5).unwrap();
        assert_eq!(half.eval(10.0), 0.5);
        let neg = r.scale_y(-1.0).unwrap();
        assert_eq!(neg.monotonicity(), Monotonicity::NonIncreasing);
        assert_eq!(neg.eval(10.0), -1.0);
    }

    proptest! {
        #[test]
        fn prop_eval_within_y_range(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..8),
            q in -2e3..2e3f64,
        ) {
            // Build a sorted, deduped, non-decreasing curve from raw xs.
            let mut xs = xs;
            xs.sort_by(|a, b| fcmp(*a, *b));
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            let pts: Vec<(f64, f64)> =
                xs.iter().enumerate().map(|(i, &x)| (x, i as f64)).collect();
            if let Some(c) = PiecewiseLinear::new(pts) {
                let y = c.eval(q);
                prop_assert!(y >= c.y_min() - 1e-9 && y <= c.y_max() + 1e-9);
            }
        }

        #[test]
        fn prop_inverse_min_x_is_consistent(
            n in 2usize..6,
            q in 0.0..1.0f64,
            seed in 0u64..1000,
        ) {
            // Deterministic strictly-increasing curve derived from seed.
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let x = i as f64 * (1.0 + (seed % 7) as f64);
                    let y = i as f64 / (n - 1) as f64;
                    (x, y)
                })
                .collect();
            let c = PiecewiseLinear::new(pts).unwrap();
            let x = c.inverse_min_x(q).unwrap();
            // eval at the inverse must reach q (within fp tolerance)...
            prop_assert!(c.eval(x) >= q - 1e-9);
            // ...and slightly less x must not (strictly increasing curve).
            if x > c.x_min() + 1e-6 {
                prop_assert!(c.eval(x - 1e-6) <= q + 1e-9);
            }
        }

        #[test]
        fn prop_eval_is_monotone(
            q1 in -50.0..50.0f64,
            q2 in -50.0..50.0f64,
        ) {
            let c = PiecewiseLinear::new(
                vec![(-10.0, -1.0), (0.0, 0.0), (10.0, 0.2), (30.0, 1.0)],
            ).unwrap();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(c.eval(lo) <= c.eval(hi) + 1e-12);
        }
    }
}
