//! Declarative scenario specifications: a run as **data**.
//!
//! [`ScenarioSpec`] fully describes a simulation — cluster topology
//! (homogeneous and heterogeneous node pools), simulator timing/overheads
//! and planned outages, transactional applications with composable
//! intensity traces, job streams with composable arrival processes and
//! template mixes, and controller tuning — and round-trips through serde
//! JSON, so scenarios live in files and corpora instead of code.
//!
//! The pipeline is:
//!
//! ```text
//! ScenarioSpec ──validate()──▶ ok? ──materialize()──▶ Scenario ──build()──▶ Simulator
//!      ▲                                                │
//!      └── serde JSON (to_json / from_json) ────────────┘ run(…) ──▶ SimReport
//! ```
//!
//! [`ScenarioSpec::preset`] names the built-in corpus (≥ 6 scenarios:
//! the paper's experiment and its scaled variant, a heterogeneous pool,
//! diurnal and bursty/batch workloads, and a service-differentiation
//! mix); [`ScenarioSpec::corpus`] returns all of them for sweeps, benches
//! and the CI round-trip gate.

use crate::controller::ControllerConfig;
use crate::scenario::{Scenario, ScenarioApp};
use serde::{Deserialize, Serialize};
use slaq_obs::SloSpec;
use slaq_perfmodel::TransactionalSpec;
use slaq_placement::problem::PlacementConfig;
use slaq_placement::{ShardPlan, SolveMode};
use slaq_sim::{
    ChaosSpec, ElasticitySpec, NodeOutage, OvercommitSpec, OverheadConfig, SimConfig, SimReport,
};
use slaq_types::{
    ClusterSpec, CpuMhz, EntityId, JobId, MemMb, NodeId, Result, SimDuration, SimTime, SlaqError,
    Work, ZoneId,
};
use slaq_utility::ResponseTimeGoal;
use slaq_workloads::{ArrivalProcess, GeneratedJob, IntensityTrace, JobMix, JobTemplate};
use std::collections::BTreeMap;

/// A pool of identical nodes; a cluster is a list of pools, so one pool
/// is the homogeneous case and several pools are a heterogeneous fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePoolSpec {
    /// Number of identical nodes in this pool.
    pub count: u32,
    /// Processors per node.
    pub cpus_per_node: u32,
    /// Power of one processor.
    pub core_mhz: f64,
    /// Memory per node available to workload VMs.
    pub node_mem_mb: u64,
    /// Optional zone label (rack / availability zone / edge site). Pools
    /// sharing a label share a zone; unlabeled pools share one implicit
    /// default zone. With [`ShardingSpec::Zones`] (the default controller
    /// setting) two or more distinct zones switch placement to the
    /// sharded engine; a single zone preserves the global solver bit for
    /// bit.
    pub zone: Option<String>,
}

/// Cluster topology: ordered node pools; node ids are assigned
/// sequentially across pools.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// The pools, in node-id order.
    pub pools: Vec<NodePoolSpec>,
}

impl ClusterTopology {
    /// Single-pool (homogeneous) topology.
    pub fn homogeneous(count: u32, cpus_per_node: u32, core_mhz: f64, node_mem_mb: u64) -> Self {
        ClusterTopology {
            pools: vec![NodePoolSpec {
                count,
                cpus_per_node,
                core_mhz,
                node_mem_mb,
                zone: None,
            }],
        }
    }

    /// Total node count across pools.
    pub fn node_count(&self) -> u32 {
        self.pools.iter().map(|p| p.count).sum()
    }

    /// Number of distinct zones across pools (unlabeled pools share one
    /// implicit zone).
    pub fn zone_count(&self) -> usize {
        let mut labels: Vec<Option<&str>> = self.pools.iter().map(|p| p.zone.as_deref()).collect();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Per-node zone table, indexed by node id (ids are assigned densely
    /// across pools). Distinct labels map to [`ZoneId`]s in sorted label
    /// order, after the implicit `ZoneId(0)` of unlabeled pools.
    pub fn zone_table(&self) -> Vec<ZoneId> {
        let mut labels: Vec<&str> = self
            .pools
            .iter()
            .filter_map(|p| p.zone.as_deref())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        let zone_of = |pool: &NodePoolSpec| -> ZoneId {
            match pool.zone.as_deref() {
                None => ZoneId::new(0),
                Some(label) => {
                    let rank = labels.binary_search(&label).expect("label collected");
                    ZoneId::new(rank as u32 + 1)
                }
            }
        };
        let mut table = Vec::with_capacity(self.node_count() as usize);
        for pool in &self.pools {
            let z = zone_of(pool);
            table.extend((0..pool.count).map(|_| z));
        }
        table
    }

    /// Materialize the concrete [`ClusterSpec`].
    pub fn materialize(&self) -> ClusterSpec {
        let mut b = ClusterSpec::builder();
        for p in &self.pools {
            b = b.nodes(
                p.count,
                p.cpus_per_node,
                CpuMhz::new(p.core_mhz),
                MemMb::new(p.node_mem_mb),
            );
        }
        b.build()
    }

    fn validate(&self) -> Result<()> {
        if self.pools.is_empty() {
            return Err(SlaqError::spec("cluster", "topology has no nodes"));
        }
        for (i, p) in self.pools.iter().enumerate() {
            let section = format!("cluster.pools[{i}]");
            if p.count == 0 {
                return Err(SlaqError::spec(section, "pool count must be at least 1"));
            }
            if p.cpus_per_node == 0 {
                return Err(SlaqError::spec(section, "cpus_per_node must be at least 1"));
            }
            if !(p.core_mhz.is_finite() && p.core_mhz > 0.0) {
                return Err(SlaqError::spec(section, "core_mhz must be positive"));
            }
            if p.node_mem_mb == 0 {
                return Err(SlaqError::spec(section, "node_mem_mb must be positive"));
            }
        }
        Ok(())
    }
}

/// Simulator timing, placement-action overheads, and enforcement mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingSpec {
    /// Controller invocation period (paper: 600 s).
    pub control_period_secs: f64,
    /// Experiment horizon (paper: 72 000 s).
    pub horizon_secs: f64,
    /// Cold-start latency of a pending job's VM.
    pub start_overhead_secs: f64,
    /// Resume latency of a suspended image.
    pub resume_overhead_secs: f64,
    /// Live-migration latency.
    pub migrate_overhead_secs: f64,
    /// Enforce transactional allocations as hypervisor limits (the
    /// paper's middleware behaviour).
    pub cap_transactional: bool,
}

impl Default for TimingSpec {
    fn default() -> Self {
        TimingSpec {
            control_period_secs: 600.0,
            horizon_secs: 72_000.0,
            start_overhead_secs: 30.0,
            resume_overhead_secs: 60.0,
            migrate_overhead_secs: 90.0,
            cap_transactional: true,
        }
    }
}

impl TimingSpec {
    /// Cap the horizon to at most `cycles` control cycles — the one
    /// idiom behind every "run a preset briefly" sweep, bench and gate
    /// (specs are data, so the cap is a field write). Never extends a
    /// shorter horizon.
    pub fn cap_to_cycles(&mut self, cycles: usize) {
        self.horizon_secs = self
            .horizon_secs
            .min(self.control_period_secs * cycles as f64);
    }

    /// The concrete simulator configuration.
    pub fn materialize(&self) -> SimConfig {
        SimConfig {
            control_period: SimDuration::from_secs(self.control_period_secs),
            horizon: SimTime::from_secs(self.horizon_secs),
            overheads: OverheadConfig {
                start: SimDuration::from_secs(self.start_overhead_secs),
                resume: SimDuration::from_secs(self.resume_overhead_secs),
                migrate: SimDuration::from_secs(self.migrate_overhead_secs),
            },
            cap_transactional: self.cap_transactional,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.control_period_secs.is_finite() && self.control_period_secs > 0.0) {
            return Err(SlaqError::spec("timing", "control period must be positive"));
        }
        if !(self.horizon_secs.is_finite() && self.horizon_secs > 0.0) {
            return Err(SlaqError::spec("timing", "horizon must be positive"));
        }
        for (name, v) in [
            ("start_overhead_secs", self.start_overhead_secs),
            ("resume_overhead_secs", self.resume_overhead_secs),
            ("migrate_overhead_secs", self.migrate_overhead_secs),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(SlaqError::spec(
                    "timing",
                    format!("{name} must be non-negative"),
                ));
            }
        }
        Ok(())
    }
}

/// One transactional application: static SLA parameters plus its
/// ground-truth intensity trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSpec {
    /// Report label.
    pub name: String,
    /// Ground-truth request intensity λ(t).
    pub trace: IntensityTrace,
    /// CPU work per request (MHz·s).
    pub service_mhz_s: f64,
    /// Response-time goal τ (seconds).
    pub rt_goal_secs: f64,
    /// Modeled maximum-utility level (must lie in (0, 1)).
    pub u_cap: f64,
    /// Memory footprint per instance.
    pub mem_mb: u64,
    /// Instances kept running even when idle.
    pub min_instances: u32,
    /// Cluster-size limit.
    pub max_instances: u32,
    /// EWMA smoothing of the online demand estimator (in (0, 1]).
    pub estimator_alpha: f64,
    /// Optional service-level objective. Absent (pre-SLO spec files) or
    /// partial blocks fill defaults; apps without a block are still
    /// tracked against [`SloSpec::default`] when observability is on.
    pub slo: Option<SloSpec>,
}

impl AppSpec {
    /// The static spec the performance model consumes.
    pub fn transactional_spec(&self) -> Result<TransactionalSpec> {
        let rt_goal = ResponseTimeGoal::new(SimDuration::from_secs(self.rt_goal_secs))
            .ok_or_else(|| SlaqError::spec(&self.name, "rt_goal_secs must be positive"))?;
        let spec = TransactionalSpec {
            name: self.name.clone(),
            service_per_request: Work::new(self.service_mhz_s),
            rt_goal,
            mem_per_instance: MemMb::new(self.mem_mb),
            max_instances: self.max_instances,
            min_instances: self.min_instances,
            u_cap: self.u_cap,
        };
        spec.validate()
            .map_err(|detail| SlaqError::spec(&self.name, detail))?;
        Ok(spec)
    }

    fn validate(&self, section: &str) -> Result<()> {
        self.transactional_spec().map_err(|e| relabel(e, section))?;
        self.trace
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        if !(self.estimator_alpha > 0.0 && self.estimator_alpha <= 1.0) {
            return Err(SlaqError::spec(
                section,
                "estimator_alpha must lie in (0, 1]",
            ));
        }
        if let Some(slo) = &self.slo {
            slo.validate()
                .map_err(|detail| SlaqError::spec(section, detail))?;
        }
        Ok(())
    }
}

/// One job stream: an arrival process feeding a template mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStreamSpec {
    /// Report label.
    pub name: String,
    /// When jobs arrive.
    pub arrivals: ArrivalProcess,
    /// Cap on jobs submitted by this stream (the horizon truncates
    /// further).
    pub max_jobs: usize,
    /// What arrives.
    pub mix: JobMix,
    /// Added to the scenario seed so streams draw independent randomness.
    pub seed_offset: u64,
}

impl JobStreamSpec {
    fn validate(&self, section: &str) -> Result<()> {
        self.arrivals
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        self.mix
            .validate()
            .map_err(|detail| SlaqError::spec(section, detail))?;
        if self.max_jobs == 0 {
            return Err(SlaqError::spec(section, "max_jobs must be at least 1"));
        }
        Ok(())
    }
}

/// A planned node outage, by node index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    /// Failing node index (dense, across pools).
    pub node: u32,
    /// Failure instant.
    pub from_secs: f64,
    /// Recovery instant.
    pub to_secs: f64,
}

/// Which controller runs the scenario — the paper's utility-driven
/// manager or one of the E3 baselines, named in the spec so corpus rows
/// can compare controllers per scenario instead of hard-coding one.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ControllerKind {
    /// [`UtilityController`](crate::UtilityController): utility equalization + constrained
    /// placement (the paper's algorithm; default).
    #[default]
    Utility,
    /// [`crate::TransactionalFirstController`]: apps take their full
    /// demand, jobs queue FCFS for the scraps.
    Fcfs,
    /// [`crate::StaticPartitionController`]: a fixed node fence between
    /// the tiers.
    Static {
        /// Fraction of nodes reserved for the transactional tier,
        /// in (0, 1).
        trans_fraction: f64,
    },
}

impl ControllerKind {
    /// Short lowercase label for report rows (`utility` | `fcfs` |
    /// `static`).
    pub fn name(&self) -> &'static str {
        match self {
            ControllerKind::Utility => "utility",
            ControllerKind::Fcfs => "fcfs",
            ControllerKind::Static { .. } => "static",
        }
    }
}

/// How the placement engine partitions nodes into shards.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ShardingSpec {
    /// Derive shards from the pools' `zone` labels: one shard per
    /// distinct zone, falling back to the exact global solver when the
    /// fleet has at most one zone (default — unlabeled specs keep
    /// today's behavior bit for bit).
    #[default]
    Zones,
    /// Always solve globally, ignoring zone labels.
    Global,
    /// Partition into a fixed number of contiguous shards regardless of
    /// labels (`count = 1` exercises the sharded engine's global-
    /// equivalent path).
    Count {
        /// Number of shards (≥ 1; capped at the node count).
        count: u32,
    },
}

/// How the control plane schedules placement solves — the knob behind
/// the pipelined control plane (`crate::pipeline`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum PipelineSpec {
    /// Sense, solve and actuate inside one control cycle (the paper's
    /// synchronous controller; default).
    #[default]
    Sync,
    /// Overlap solves with simulation: the plan solved from cycle *k*'s
    /// snapshot is enacted — reconciled against the live world — at
    /// cycle *k + latency_cycles*. `latency_cycles = 0` routes through
    /// the pipeline machinery but reproduces the synchronous path bit
    /// for bit (pinned by the corpus differential gate).
    Overlap {
        /// Enactment lag, in control cycles.
        latency_cycles: u32,
        /// When several matured plans are due at the same cycle (the
        /// worker fell behind), enact only the freshest and drop the
        /// rest (`true`, default) or enact strictly one plan per cycle
        /// in FIFO order (`false`), letting the backlog drain over the
        /// following cycles.
        supersede: bool,
    },
}

// Hand-rolled so spec files written before the `supersede` knob existed
// still parse: an `Overlap` object without the key takes the historical
// behavior (supersede = true) instead of failing the whole file.
impl serde::Deserialize for PipelineSpec {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        if let serde::Value::Str(s) = v {
            return match s.as_str() {
                "Sync" => Ok(PipelineSpec::Sync),
                other => Err(serde::DeError::msg(format!(
                    "unknown PipelineSpec variant {other:?}"
                ))),
            };
        }
        let inner = serde::obj_get(v, "Overlap")?;
        if matches!(inner, serde::Value::Null) {
            return Err(serde::DeError::msg("expected PipelineSpec"));
        }
        Ok(PipelineSpec::Overlap {
            latency_cycles: serde::Deserialize::from_value(serde::obj_get(
                inner,
                "latency_cycles",
            )?)?,
            supersede: match serde::obj_get(inner, "supersede")? {
                serde::Value::Null => true,
                other => serde::Deserialize::from_value(other)?,
            },
        })
    }
}

impl PipelineSpec {
    /// An overlapped plane with the default supersede policy (the common
    /// construction in sweeps and tests).
    pub fn overlap(latency_cycles: u32) -> Self {
        PipelineSpec::Overlap {
            latency_cycles,
            supersede: true,
        }
    }

    /// Short lowercase label for report rows (`sync` | `overlapN`).
    pub fn label(&self) -> String {
        match self {
            PipelineSpec::Sync => "sync".into(),
            PipelineSpec::Overlap { latency_cycles, .. } => format!("overlap{latency_cycles}"),
        }
    }
}

/// Observability plane for one run — the knob behind `crates/obs`
/// (`"Off"` | `"On"`). `On` installs an enabled [`slaq_obs::Recorder`]
/// on the simulator at build time, so the run can export a span/counter
/// report, a Chrome trace, or a Prometheus text dump. The recorder
/// observes only — no control decision reads it — so every metric
/// series stays bit-identical to an `Off` run (pinned by the
/// observability gate).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ObserveSpec {
    /// No instrumentation: the recorder stays the no-op handle, one
    /// never-taken branch per site (default).
    #[default]
    Off,
    /// Record phase spans, counters and histograms across the control
    /// cycle for post-run export.
    On,
}

impl ObserveSpec {
    /// `true` when an enabled recorder should be installed on the
    /// simulator.
    pub fn is_on(&self) -> bool {
        matches!(self, ObserveSpec::On)
    }

    /// Short lowercase label for report rows (`off` | `on`).
    pub fn label(&self) -> &'static str {
        match self {
            ObserveSpec::Off => "off",
            ObserveSpec::On => "on",
        }
    }
}

/// Request-level routing tier configuration — the knob behind
/// `crates/routing` (`"Off"` | `"Uniform"` | `"Affinity"`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum RoutingSpec {
    /// No routing tier: the simulator records no router series and every
    /// metric stays bit-identical to the pre-routing output (default).
    #[default]
    Off,
    /// Route blindly round-robin across live instances — the baseline
    /// the affinity policy is measured against. Warmth is still tracked
    /// (uniform traffic spreads it thin), but never published to the
    /// placement solver.
    Uniform {
        /// Fraction of per-request work a fully-warm instance saves.
        warm_gain: f64,
        /// Warmth EWMA smoothing factor in `(0, 1]`.
        warm_alpha: f64,
    },
    /// Affinity-aware routing: chunks go to the best
    /// `warm_gain·warmth − load_penalty·overload` score, and warmth is
    /// published to the solver as a candidate-ordering bonus.
    Affinity {
        /// Softmax temperature; `0` = deterministic argmax.
        temperature: f64,
        /// Fraction of per-request work a fully-warm instance saves.
        warm_gain: f64,
        /// Warmth EWMA smoothing factor in `(0, 1]`.
        warm_alpha: f64,
        /// Weight of the overload term in the chunk score.
        load_penalty: f64,
        /// MHz-per-warmth-point bonus the solver adds to a warm node's
        /// residual CPU when ordering candidates (`0` keeps placement
        /// affinity-free while still routing by warmth).
        placement_bias: f64,
    },
}

// Hand-rolled so spec files written before the routing tier existed (and
// `Affinity` objects omitting newer knobs) still parse with defaults.
impl serde::Deserialize for RoutingSpec {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        if let serde::Value::Str(s) = v {
            return match s.as_str() {
                "Off" => Ok(RoutingSpec::Off),
                other => Err(serde::DeError::msg(format!(
                    "unknown RoutingSpec variant {other:?}"
                ))),
            };
        }
        let d = slaq_routing::RouterConfig::default();
        let num = |inner: &serde::Value,
                   key: &str,
                   fallback: f64|
         -> std::result::Result<f64, serde::DeError> {
            match serde::obj_get(inner, key)? {
                serde::Value::Null => Ok(fallback),
                other => serde::Deserialize::from_value(other),
            }
        };
        match serde::obj_get(v, "Uniform")? {
            serde::Value::Null => {}
            inner => {
                return Ok(RoutingSpec::Uniform {
                    warm_gain: num(inner, "warm_gain", d.warm_gain)?,
                    warm_alpha: num(inner, "warm_alpha", d.warm_alpha)?,
                })
            }
        }
        let inner = serde::obj_get(v, "Affinity")?;
        if matches!(inner, serde::Value::Null) {
            return Err(serde::DeError::msg("expected RoutingSpec"));
        }
        Ok(RoutingSpec::Affinity {
            temperature: num(inner, "temperature", d.temperature)?,
            warm_gain: num(inner, "warm_gain", d.warm_gain)?,
            warm_alpha: num(inner, "warm_alpha", d.warm_alpha)?,
            load_penalty: num(inner, "load_penalty", d.load_penalty)?,
            placement_bias: num(inner, "placement_bias", 0.0)?,
        })
    }
}

impl RoutingSpec {
    /// Short lowercase label for report rows (`off` | `uniform` |
    /// `affinity`).
    pub fn label(&self) -> &'static str {
        match self {
            RoutingSpec::Off => "off",
            RoutingSpec::Uniform { .. } => "uniform",
            RoutingSpec::Affinity { .. } => "affinity",
        }
    }

    /// Lower onto a concrete [`slaq_routing::RouterConfig`], `None` when
    /// routing is off. The router's softmax stream is seeded from the
    /// scenario seed so seeded runs reproduce bit for bit.
    pub fn router_config(&self, scenario_seed: u64) -> Option<slaq_routing::RouterConfig> {
        let base = slaq_routing::RouterConfig {
            seed: scenario_seed ^ 0x526f_7574_6572_5f31, // "Router_1"
            ..slaq_routing::RouterConfig::default()
        };
        match *self {
            RoutingSpec::Off => None,
            RoutingSpec::Uniform {
                warm_gain,
                warm_alpha,
            } => Some(slaq_routing::RouterConfig {
                warm_gain,
                warm_alpha,
                uniform: true,
                ..base
            }),
            RoutingSpec::Affinity {
                temperature,
                warm_gain,
                warm_alpha,
                load_penalty,
                ..
            } => Some(slaq_routing::RouterConfig {
                temperature,
                warm_gain,
                warm_alpha,
                load_penalty,
                uniform: false,
                ..base
            }),
        }
    }

    /// The MHz-per-warmth-point placement bonus (`0` unless affinity
    /// routing asks for one).
    pub fn placement_bias(&self) -> f64 {
        match *self {
            RoutingSpec::Affinity { placement_bias, .. } => placement_bias,
            _ => 0.0,
        }
    }

    fn validate(&self) -> Result<()> {
        let check = |name: &str, ok: bool| -> Result<()> {
            if ok {
                Ok(())
            } else {
                Err(SlaqError::spec("controller", format!("routing: {name}")))
            }
        };
        match *self {
            RoutingSpec::Off => Ok(()),
            RoutingSpec::Uniform {
                warm_gain,
                warm_alpha,
            } => {
                check(
                    "warm_gain must lie in [0, 1)",
                    warm_gain.is_finite() && (0.0..1.0).contains(&warm_gain),
                )?;
                check(
                    "warm_alpha must lie in (0, 1]",
                    warm_alpha > 0.0 && warm_alpha <= 1.0,
                )
            }
            RoutingSpec::Affinity {
                temperature,
                warm_gain,
                warm_alpha,
                load_penalty,
                placement_bias,
            } => {
                check(
                    "temperature must be non-negative",
                    temperature.is_finite() && temperature >= 0.0,
                )?;
                check(
                    "warm_gain must lie in [0, 1)",
                    warm_gain.is_finite() && (0.0..1.0).contains(&warm_gain),
                )?;
                check(
                    "warm_alpha must lie in (0, 1]",
                    warm_alpha > 0.0 && warm_alpha <= 1.0,
                )?;
                check(
                    "load_penalty must be non-negative",
                    load_penalty.is_finite() && load_penalty >= 0.0,
                )?;
                check(
                    "placement_bias must be non-negative",
                    placement_bias.is_finite() && placement_bias >= 0.0,
                )
            }
        }
    }
}

/// Controller tuning carried by the spec (the knobs experiments sweep).
///
/// Every knob is spec data, so controller variants — which algorithm,
/// how the placement engine shards, how the control plane pipelines —
/// are one field write away, and invalid settings are caught by
/// [`ScenarioSpec::validate`] with the offending section named:
///
/// ```
/// use slaq_core::{PipelineSpec, ScenarioSpec, ShardingSpec};
///
/// let mut spec = ScenarioSpec::preset("consolidation").expect("built-in preset");
/// // Three fixed shards, a cross-shard migration budget, and a
/// // one-cycle-stale overlapped control plane:
/// spec.controller.shards = ShardingSpec::Count { count: 3 };
/// spec.controller.rebalance_budget = 8;
/// spec.controller.pipeline = PipelineSpec::overlap(1);
/// spec.validate().expect("still a valid scenario");
///
/// spec.controller.shards = ShardingSpec::Count { count: 0 };
/// let err = spec.validate().expect_err("zero shards is rejected");
/// assert!(err.to_string().contains("controller"), "{err}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ControllerSpec {
    /// Which controller to run (`Utility` | `Fcfs` | `Static`).
    pub kind: ControllerKind,
    /// Cap on placement changes per cycle (`None` = unbounded).
    pub max_changes: Option<usize>,
    /// Eviction hysteresis (see [`PlacementConfig::evict_priority_gap`]).
    pub evict_priority_gap: f64,
    /// Node partitioning for the placement engine (utility controller
    /// only).
    pub shards: ShardingSpec,
    /// Cross-shard migrations allowed per cycle when sharded.
    pub rebalance_budget: usize,
    /// Control-plane scheduling: synchronous solves or the pipelined
    /// snapshot → solve → actuate plane with overlapped solves.
    pub pipeline: PipelineSpec,
    /// Placement engine mode: `"Batch"` recomputes every cycle from
    /// scratch; `"Delta"` reuses warm solver state and re-routes the
    /// allocation flow around each cycle's dirty set (bit-identical to
    /// batch; utility controller only).
    pub solve: SolveMode,
    /// Request-level routing tier in front of placement (`"Off"` |
    /// `"Uniform"` | `"Affinity"`). Off — the default — installs no
    /// tier, keeping every metric series bit-identical to pre-routing
    /// runs.
    pub routing: RoutingSpec,
    /// Observability plane (`"Off"` | `"On"`). On instruments the run
    /// with spans/counters/histograms for post-run export; metric series
    /// stay bit-identical either way.
    pub observe: ObserveSpec,
}

// Hand-rolled so spec files written before the `kind`/`shards`/
// `rebalance_budget` knobs existed still parse: absent keys take the
// defaults instead of failing the whole file.
impl serde::Deserialize for ControllerSpec {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let d = ControllerSpec::default();
        let opt = |key: &str| serde::obj_get(v, key);
        Ok(ControllerSpec {
            kind: match opt("kind")? {
                serde::Value::Null => d.kind,
                other => serde::Deserialize::from_value(other)?,
            },
            max_changes: serde::Deserialize::from_value(opt("max_changes")?)?,
            evict_priority_gap: serde::Deserialize::from_value(opt("evict_priority_gap")?)?,
            shards: match opt("shards")? {
                serde::Value::Null => d.shards,
                other => serde::Deserialize::from_value(other)?,
            },
            rebalance_budget: match opt("rebalance_budget")? {
                serde::Value::Null => d.rebalance_budget,
                other => serde::Deserialize::from_value(other)?,
            },
            pipeline: match opt("pipeline")? {
                serde::Value::Null => d.pipeline,
                other => serde::Deserialize::from_value(other)?,
            },
            solve: match opt("solve")? {
                serde::Value::Null => d.solve,
                other => serde::Deserialize::from_value(other)?,
            },
            routing: match opt("routing")? {
                serde::Value::Null => d.routing,
                other => serde::Deserialize::from_value(other)?,
            },
            observe: match opt("observe")? {
                serde::Value::Null => d.observe,
                other => serde::Deserialize::from_value(other)?,
            },
        })
    }
}

impl Default for ControllerSpec {
    fn default() -> Self {
        let d = ControllerConfig::default();
        ControllerSpec {
            kind: ControllerKind::Utility,
            max_changes: d.placement.max_changes,
            evict_priority_gap: d.placement.evict_priority_gap,
            shards: ShardingSpec::Zones,
            rebalance_budget: d.rebalance_budget,
            pipeline: PipelineSpec::Sync,
            solve: d.solve,
            routing: RoutingSpec::Off,
            observe: ObserveSpec::Off,
        }
    }
}

/// A complete, declarative, serde-round-trippable description of one run.
///
/// Specs are plain data: look one up from the built-in corpus (or read
/// it from JSON), tweak fields, and it round-trips losslessly —
/// [`ScenarioSpec::to_json`] then [`ScenarioSpec::from_json`] is a fixed
/// point, which is what lets scenarios live in files and CI gates
/// instead of code:
///
/// ```
/// use slaq_core::ScenarioSpec;
///
/// let spec = ScenarioSpec::preset("paper-small").expect("built-in preset");
/// spec.validate().expect("corpus presets always validate");
///
/// let json = spec.to_json().expect("specs serialize");
/// let back = ScenarioSpec::from_json(&json).expect("and parse back");
/// assert_eq!(back, spec, "JSON round-trip is a fixed point");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (also the report label).
    pub name: String,
    /// Master workload seed; streams offset it via their `seed_offset`.
    pub seed: u64,
    /// The cluster.
    pub cluster: ClusterTopology,
    /// Simulator timing and overheads.
    pub timing: TimingSpec,
    /// Controller tuning.
    pub controller: ControllerSpec,
    /// Transactional applications.
    pub apps: Vec<AppSpec>,
    /// Job streams.
    pub job_streams: Vec<JobStreamSpec>,
    /// Planned node outages (failure injection).
    pub outages: Vec<OutageSpec>,
    /// Adversarial chaos plan (zone storms, flapping nodes, capacity
    /// degradation, flash crowds, batch floods), lowered onto the
    /// outage/trace/stream machinery at materialization. Absent in
    /// pre-chaos spec files, which keep parsing.
    pub chaos: Option<ChaosSpec>,
    /// Overbooking knobs: advertised-capacity ratios plus the seeded
    /// true-usage bite model.
    pub overcommit: Option<OvercommitSpec>,
    /// Vertical elasticity: seeded mid-run job resize events.
    pub elasticity: Option<ElasticitySpec>,
}

/// Rewrite a nested spec error's section to the outer path.
fn relabel(e: SlaqError, section: &str) -> SlaqError {
    match e {
        SlaqError::Spec { detail, .. } => SlaqError::spec(section, detail),
        other => other,
    }
}

impl ScenarioSpec {
    /// Check every section; the error names the offending part.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(SlaqError::spec("name", "scenario name must be non-empty"));
        }
        self.cluster.validate()?;
        self.timing.validate()?;
        if !(self.controller.evict_priority_gap.is_finite()
            && self.controller.evict_priority_gap >= 0.0)
        {
            return Err(SlaqError::spec(
                "controller",
                "evict_priority_gap must be non-negative",
            ));
        }
        if let ShardingSpec::Count { count: 0 } = self.controller.shards {
            return Err(SlaqError::spec(
                "controller",
                "shard count must be at least 1",
            ));
        }
        self.controller.routing.validate()?;
        if let ControllerKind::Static { trans_fraction } = self.controller.kind {
            if !(trans_fraction.is_finite() && trans_fraction > 0.0 && trans_fraction < 1.0) {
                return Err(SlaqError::spec(
                    "controller",
                    "static partition trans_fraction must lie in (0, 1)",
                ));
            }
        }
        if self.apps.is_empty() && self.job_streams.is_empty() {
            return Err(SlaqError::spec(
                "workloads",
                "a scenario needs at least one app or job stream",
            ));
        }
        for (i, app) in self.apps.iter().enumerate() {
            app.validate(&format!("apps[{i}]"))?;
        }
        for (i, s) in self.job_streams.iter().enumerate() {
            s.validate(&format!("job_streams[{i}]"))?;
        }
        let nodes = self.cluster.node_count();
        for (i, o) in self.outages.iter().enumerate() {
            let section = format!("outages[{i}]");
            if o.node >= nodes {
                return Err(SlaqError::spec(
                    section,
                    format!("node {} out of range (cluster has {nodes})", o.node),
                ));
            }
            if !(o.from_secs.is_finite() && o.from_secs >= 0.0 && o.to_secs > o.from_secs) {
                return Err(SlaqError::spec(section, "outage window must be non-empty"));
            }
        }
        // Reject overlapping hand-written windows on the same node: two
        // overlapping outages almost always mean a typo'd plan, and the
        // simulator would silently merge them.
        let mut windows: Vec<(u32, f64, f64, usize)> = self
            .outages
            .iter()
            .enumerate()
            .map(|(i, o)| (o.node, o.from_secs, o.to_secs, i))
            .collect();
        windows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in windows.windows(2) {
            let (node, _, prev_to, prev_ix) = w[0];
            let (next_node, next_from, _, next_ix) = w[1];
            if node == next_node && next_from < prev_to {
                return Err(SlaqError::spec(
                    format!("outages[{next_ix}]"),
                    format!("window overlaps outages[{prev_ix}] on node {node}"),
                ));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos
                .validate(nodes as usize)
                .map_err(|msg| SlaqError::spec("chaos", msg))?;
        }
        if let Some(oc) = &self.overcommit {
            oc.validate()
                .map_err(|msg| SlaqError::spec("overcommit", msg))?;
            if !self.timing.cap_transactional {
                return Err(SlaqError::spec(
                    "overcommit",
                    "the overbooking model requires timing.cap_transactional",
                ));
            }
        }
        if let Some(el) = &self.elasticity {
            el.validate()
                .map_err(|msg| SlaqError::spec("elasticity", msg))?;
        }
        Ok(())
    }

    /// Validate and materialize the runnable [`Scenario`]: concrete
    /// cluster, generated job population (with per-job importance tiers
    /// folded into the controller config), and outage plan.
    ///
    /// Specs compose from plain struct literals, so a whole scenario —
    /// cluster, SLAs, workload, controller — builds programmatically and
    /// runs end to end:
    ///
    /// ```
    /// use slaq_core::{AppSpec, ClusterTopology, ControllerSpec, ScenarioSpec, TimingSpec};
    /// use slaq_workloads::IntensityTrace;
    ///
    /// let mut spec = ScenarioSpec {
    ///     name: "one-app-demo".into(),
    ///     seed: 7,
    ///     cluster: ClusterTopology::homogeneous(4, 4, 3000.0, 4096),
    ///     timing: TimingSpec::default(),
    ///     controller: ControllerSpec::default(),
    ///     apps: vec![AppSpec {
    ///         name: "storefront".into(),
    ///         trace: IntensityTrace::Constant { rate: 12.0 },
    ///         service_mhz_s: 720.0,
    ///         rt_goal_secs: 0.5,
    ///         u_cap: 0.9,
    ///         mem_mb: 1024,
    ///         min_instances: 1,
    ///         max_instances: 4,
    ///         estimator_alpha: 0.4,
    ///         slo: None,
    ///     }],
    ///     job_streams: vec![],
    ///     outages: vec![],
    ///     chaos: None,
    ///     overcommit: None,
    ///     elasticity: None,
    /// };
    /// spec.timing.cap_to_cycles(2); // keep the doctest run short
    ///
    /// let scenario = spec.materialize().expect("spec is valid");
    /// let mut controller = scenario.controller();
    /// let mut sim = scenario.build().expect("scenario builds");
    /// let report = sim.run(controller.as_mut()).expect("and runs");
    /// // Control fires at t = 0 s, 600 s and the 1200 s horizon.
    /// assert_eq!(report.cycles, 3);
    /// ```
    pub fn materialize(&self) -> Result<Scenario> {
        self.validate()?;
        let cluster = self.cluster.materialize();
        let sim = self.timing.materialize();
        let horizon = sim.horizon;

        // Lower the chaos plan (if any) onto the concrete machinery:
        // outage windows, capacity dips, a demand spike summed onto
        // every app trace, and an antagonist job stream.
        let plan = self
            .chaos
            .as_ref()
            .map(|c| c.lower(self.seed, horizon.as_secs(), &self.cluster.zone_table()));

        let mut apps = Vec::with_capacity(self.apps.len());
        for app in &self.apps {
            let trace = match plan.as_ref().and_then(|p| p.spike.clone()) {
                Some(spike) => IntensityTrace::Sum {
                    parts: vec![app.trace.clone(), spike],
                },
                None => app.trace.clone(),
            };
            apps.push(ScenarioApp {
                spec: app.transactional_spec()?,
                trace,
                estimator_alpha: app.estimator_alpha,
                slo: app.slo,
            });
        }

        // Generate all streams, then replicate the simulator's arrival
        // ordering (descending (time, name), popped from the back) so job
        // ids — assigned densely in submission order — can be mapped to
        // importance tiers here, before the simulator exists.
        let mut generated: Vec<GeneratedJob> = Vec::new();
        for stream in &self.job_streams {
            let arrival_seed = self.seed.wrapping_add(stream.seed_offset);
            let mix_seed = arrival_seed ^ 0x6a09_e667_f3bc_c909;
            let arrivals = stream
                .arrivals
                .stream(stream.max_jobs, horizon, arrival_seed);
            generated.extend(stream.mix.generate(&arrivals, mix_seed, generated.len()));
        }
        if let Some(flood) = plan.as_ref().and_then(|p| p.flood) {
            let flood_seed = self.seed.wrapping_add(0x466c_6f6f_6421); // "Flood!"
            let arrivals = ArrivalProcess::BatchDrops {
                first_secs: flood.first_secs,
                period_secs: flood.period_secs,
                batch_size: flood.batch_size,
            }
            .stream(flood.max_jobs as usize, horizon, flood_seed);
            let mix = JobMix::uniform(batch_template("flood", flood.work_secs, flood.mem_mb));
            let mix_seed = flood_seed ^ 0x6a09_e667_f3bc_c909;
            generated.extend(mix.generate(&arrivals, mix_seed, generated.len()));
        }
        generated.sort_by(|a, b| {
            b.submit
                .total_cmp(a.submit)
                .then(b.spec.name.cmp(&a.spec.name))
        });
        let mut importance: BTreeMap<EntityId, f64> = BTreeMap::new();
        let mut jobs = Vec::with_capacity(generated.len());
        for (i, g) in generated.into_iter().rev().enumerate() {
            if g.importance != 1.0 {
                importance.insert(EntityId::Job(JobId::new(i as u32)), g.importance);
            }
            jobs.push((g.submit, g.spec));
        }

        // Lower the sharding knob onto a concrete plan: zone labels (or a
        // fixed count) activate the sharded engine; a single effective
        // zone keeps the exact global solver.
        let sharding = match self.controller.shards {
            ShardingSpec::Global => ShardPlan::Single,
            ShardingSpec::Count { count } => ShardPlan::Fixed(count),
            ShardingSpec::Zones => {
                if self.cluster.zone_count() <= 1 {
                    ShardPlan::Single
                } else {
                    ShardPlan::Zones(self.cluster.zone_table())
                }
            }
        };

        let controller = ControllerConfig {
            placement: PlacementConfig {
                max_changes: self.controller.max_changes,
                evict_priority_gap: self.controller.evict_priority_gap,
                ..PlacementConfig::default()
            },
            importance,
            sharding,
            rebalance_budget: self.controller.rebalance_budget,
            solve: self.controller.solve,
            affinity_bias: self.controller.routing.placement_bias(),
            ..ControllerConfig::default()
        };

        let mut outages: Vec<NodeOutage> = self
            .outages
            .iter()
            .map(|o| NodeOutage {
                node: NodeId::new(o.node),
                from: SimTime::from_secs(o.from_secs),
                to: SimTime::from_secs(o.to_secs),
            })
            .collect();
        let mut dips = Vec::new();
        if let Some(plan) = plan {
            outages.extend(plan.outages);
            dips = plan.dips;
        }

        Ok(Scenario {
            name: self.name.clone(),
            seed: self.seed,
            cluster,
            sim,
            apps,
            jobs,
            outages,
            dips,
            overcommit: self.overcommit,
            elasticity: self.elasticity,
            controller,
            kind: self.controller.kind,
            pipeline: self.controller.pipeline,
            routing: self.controller.routing.router_config(self.seed),
            observe: self.controller.observe,
        })
    }

    /// Materialize, build, and run under the scenario's own controller.
    pub fn run(&self) -> Result<SimReport> {
        let scenario = self.materialize()?;
        let mut controller = scenario.controller();
        scenario.run(controller.as_mut())
    }

    /// Pretty JSON rendering of the spec.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| SlaqError::spec("json", e.to_string()))
    }

    /// Parse a spec from JSON text (then validate separately / on
    /// materialization).
    pub fn from_json(text: &str) -> Result<Self> {
        serde_json::from_str(text).map_err(|e| SlaqError::spec("json", e.to_string()))
    }

    /// Names of the built-in corpus, in canonical order. The last four
    /// are the adversarial presets (chaos plans, overbooking,
    /// elasticity) asserted under the invariant checker by
    /// `tests/adversarial.rs`.
    pub fn preset_names() -> &'static [&'static str] {
        &[
            "paper",
            "paper-small",
            "hetero-pool",
            "diurnal",
            "bursty-batch",
            "differentiation-mix",
            "consolidation",
            "request-routing",
            "flash-crowd",
            "zone-storm",
            "node-flap",
            "antagonist-flood",
        ]
    }

    /// Look up a built-in preset by name.
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        match name {
            "paper" => Some(crate::scenario::PaperParams::default().spec_named("paper")),
            "paper-small" => Some(crate::scenario::PaperParams::small().spec_named("paper-small")),
            "hetero-pool" => Some(hetero_pool()),
            "diurnal" => Some(diurnal()),
            "bursty-batch" => Some(bursty_batch()),
            "differentiation-mix" => Some(differentiation_mix()),
            "consolidation" => Some(consolidation()),
            "request-routing" => Some(request_routing()),
            "flash-crowd" => Some(flash_crowd()),
            "zone-storm" => Some(zone_storm()),
            "node-flap" => Some(node_flap()),
            "antagonist-flood" => Some(antagonist_flood()),
            _ => None,
        }
    }

    /// The full built-in corpus.
    pub fn corpus() -> Vec<ScenarioSpec> {
        Self::preset_names()
            .iter()
            .map(|n| Self::preset(n).expect("corpus names are exhaustive"))
            .collect()
    }
}

fn batch_template(prefix: &str, work_secs: f64, mem_mb: u64) -> JobTemplate {
    JobTemplate {
        name_prefix: prefix.into(),
        work: Work::from_power_secs(CpuMhz::new(3000.0), work_secs),
        max_speed: CpuMhz::new(3000.0),
        mem: MemMb::new(mem_mb),
        goal_factor: 1.25,
        exhausted_factor: 3.0,
    }
}

fn small_app(name: &str, trace: IntensityTrace, max_instances: u32) -> AppSpec {
    AppSpec {
        name: name.into(),
        trace,
        service_mhz_s: 720.0,
        rt_goal_secs: 0.5,
        u_cap: 0.9,
        mem_mb: 1024,
        min_instances: 1,
        max_instances,
        estimator_alpha: 0.4,
        slo: None,
    }
}

/// Heterogeneous fleet: fat high-memory nodes next to the paper's 4-way
/// boxes and a pair of fast 2-way machines, with one planned outage —
/// the regime DRAPS targets, where per-node headroom differs.
fn hetero_pool() -> ScenarioSpec {
    ScenarioSpec {
        name: "hetero-pool".into(),
        seed: 8,
        cluster: ClusterTopology {
            pools: vec![
                NodePoolSpec {
                    count: 4,
                    cpus_per_node: 4,
                    core_mhz: 3000.0,
                    node_mem_mb: 4096,
                    zone: None,
                },
                NodePoolSpec {
                    count: 2,
                    cpus_per_node: 8,
                    core_mhz: 2400.0,
                    node_mem_mb: 16_384,
                    zone: None,
                },
                NodePoolSpec {
                    count: 2,
                    cpus_per_node: 2,
                    core_mhz: 3600.0,
                    node_mem_mb: 2048,
                    zone: None,
                },
            ],
        },
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("webfront", IntensityTrace::constant(24.0), 8)],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(220.0).expect("positive mean"),
            max_jobs: 160,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![OutageSpec {
            node: 0,
            from_secs: 9000.0,
            to_secs: 13_000.0,
        }],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Diurnal + flash-crowd transactional demand over a small cluster: the
/// composed trace peaks where placement must steal CPU back from jobs.
fn diurnal() -> ScenarioSpec {
    ScenarioSpec {
        name: "diurnal".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 24_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app(
            "storefront",
            IntensityTrace::Sum {
                parts: vec![
                    IntensityTrace::Diurnal {
                        base: 16.0,
                        amplitude: 12.0,
                        period_secs: 24_000.0,
                        phase_secs: 0.0,
                    },
                    IntensityTrace::Spiky {
                        base: 0.0,
                        surge: 18.0,
                        period_secs: 8000.0,
                        spike_secs: 900.0,
                        phase_secs: 2000.0,
                    },
                ],
            },
            6,
        )],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(300.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Bursty ON–OFF submissions riding over nightly batch drops — the
/// MORPHOSYS-style periodic/bursty colocation regime.
fn bursty_batch() -> ScenarioSpec {
    ScenarioSpec {
        name: "bursty-batch".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("portal", IntensityTrace::constant(10.0), 6)],
        job_streams: vec![
            JobStreamSpec {
                name: "bursts".into(),
                arrivals: ArrivalProcess::OnOff {
                    on_secs: 1200.0,
                    off_secs: 2400.0,
                    on_mean_interarrival_secs: 110.0,
                    off_mean_interarrival_secs: None,
                },
                max_jobs: 90,
                mix: JobMix::uniform(batch_template("burst", 2500.0, 1280)),
                seed_offset: 0,
            },
            JobStreamSpec {
                name: "nightly".into(),
                arrivals: ArrivalProcess::BatchDrops {
                    first_secs: 3000.0,
                    period_secs: 7000.0,
                    batch_size: 8,
                },
                max_jobs: 24,
                mix: JobMix::uniform(batch_template("nightly", 5000.0, 1280)),
                seed_offset: 1,
            },
        ],
        outages: vec![],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Differentiated importance tiers over a short/long × small/large job
/// mixture: gold jobs may take only half the utility shortfall of
/// standard ones.
fn differentiation_mix() -> ScenarioSpec {
    ScenarioSpec {
        name: "differentiation-mix".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(4, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 18_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("checkout", IntensityTrace::constant(12.0), 4)],
        job_streams: vec![JobStreamSpec {
            name: "tiers".into(),
            arrivals: ArrivalProcess::poisson_constant(210.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix {
                classes: vec![
                    slaq_workloads::TemplateClass {
                        template: batch_template("gold-short", 1800.0, 512),
                        weight: 2.0,
                        importance: 2.0,
                    },
                    slaq_workloads::TemplateClass {
                        template: batch_template("std-mid", 3600.0, 1280),
                        weight: 2.0,
                        importance: 1.0,
                    },
                    slaq_workloads::TemplateClass {
                        template: batch_template("std-long-big", 7200.0, 2048),
                        weight: 1.0,
                        importance: 1.0,
                    },
                ],
            },
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Multi-app consolidation over a **zoned** heterogeneous fleet: four
/// transactional apps on staggered diurnal phases (the regime where
/// estimator lag matters — every app peaks while another troughs, so the
/// controller continuously re-trades CPU), with a steady batch stream
/// underneath. The three zone labels activate the sharded placement
/// engine, making this the sharding showcase scenario.
fn consolidation() -> ScenarioSpec {
    let period = 24_000.0;
    // One shared diurnal shape, phase-staggered per app and reused
    // through the trace algebra: scaled per-app, clamped so troughs keep
    // a floor of traffic and the flash peaks stay under an ingress cap.
    let staggered = |phase_frac: f64, scale: f64| IntensityTrace::Clamp {
        min: 2.0,
        max: 34.0,
        part: Box::new(IntensityTrace::Scale {
            factor: scale,
            part: Box::new(IntensityTrace::Diurnal {
                base: 14.0,
                amplitude: 12.0,
                period_secs: period,
                phase_secs: period * phase_frac,
            }),
        }),
    };
    ScenarioSpec {
        name: "consolidation".into(),
        seed: 8,
        cluster: ClusterTopology {
            pools: vec![
                NodePoolSpec {
                    count: 6,
                    cpus_per_node: 4,
                    core_mhz: 3000.0,
                    node_mem_mb: 4096,
                    zone: Some("core".into()),
                },
                NodePoolSpec {
                    count: 3,
                    cpus_per_node: 8,
                    core_mhz: 2400.0,
                    node_mem_mb: 16_384,
                    zone: Some("yard".into()),
                },
                NodePoolSpec {
                    count: 3,
                    cpus_per_node: 2,
                    core_mhz: 3600.0,
                    node_mem_mb: 2048,
                    zone: Some("edge".into()),
                },
            ],
        },
        timing: TimingSpec {
            horizon_secs: 24_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![
            small_app("storefront", staggered(0.0, 1.0), 8),
            small_app("ledger", staggered(0.25, 0.8), 6),
            small_app("search", staggered(0.5, 1.2), 8),
            small_app("reports", staggered(0.75, 0.6), 5),
        ],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(240.0).expect("positive mean"),
            max_jobs: 90,
            mix: JobMix::uniform(batch_template("batch", 3500.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Skewed-affinity fleet for the request-routing tier: two hot
/// transactional apps spread over a heterogeneous pool whose per-node
/// capacity shares differ, under enough batch pressure that the
/// equalizer is always in contention. Warmth-concentrated routing lowers
/// the apps' effective work (cache/data locality), releasing real CPU to
/// the job tier — uniform routing spreads traffic thin, keeps every
/// instance lukewarm, and visibly loses on satisfied demand.
fn request_routing() -> ScenarioSpec {
    ScenarioSpec {
        name: "request-routing".into(),
        seed: 8,
        cluster: ClusterTopology {
            pools: vec![
                NodePoolSpec {
                    count: 4,
                    cpus_per_node: 4,
                    core_mhz: 3000.0,
                    node_mem_mb: 4096,
                    zone: None,
                },
                NodePoolSpec {
                    count: 2,
                    cpus_per_node: 2,
                    core_mhz: 3600.0,
                    node_mem_mb: 2048,
                    zone: None,
                },
            ],
        },
        timing: TimingSpec {
            horizon_secs: 18_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec {
            routing: RoutingSpec::Affinity {
                temperature: 0.0,
                warm_gain: 0.5,
                warm_alpha: 0.5,
                load_penalty: 0.4,
                placement_bias: 600.0,
            },
            ..ControllerSpec::default()
        },
        apps: vec![
            small_app("catalog", IntensityTrace::constant(30.0), 6),
            small_app("session", IntensityTrace::constant(18.0), 4),
        ],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(240.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: None,
        overcommit: None,
        elasticity: None,
    }
}

/// Adversarial: overbooked cluster under recurring flash crowds. The
/// controller sees 30% more CPU than physically exists while a
/// rectangular demand surge lands every 6000 s; roughly every third
/// cycle a node's true usage bites, clipping placed work and feeding
/// the `overcommit` attribution cause.
fn flash_crowd() -> ScenarioSpec {
    ScenarioSpec {
        name: "flash-crowd".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("storefront", IntensityTrace::constant(14.0), 8)],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(240.0).expect("positive mean"),
            max_jobs: 70,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: Some(ChaosSpec {
            flash_crowds: Some(slaq_sim::FlashCrowdSpec {
                surge: 30.0,
                first_secs: 2000.0,
                period_secs: 6000.0,
                spike_secs: 900.0,
            }),
            ..ChaosSpec::default()
        }),
        overcommit: Some(OvercommitSpec {
            cpu_ratio: 1.3,
            mem_ratio: 1.0,
            bite_prob: 0.35,
            bite_depth: 0.3,
        }),
        elasticity: None,
    }
}

/// Adversarial: correlated zone-outage storms over the consolidation
/// topology (three zones, so the sharded engine is live). Every storm
/// takes half of one randomly chosen zone down for 1500 s — the
/// controller must repeatedly evacuate and re-pack whole racks.
fn zone_storm() -> ScenarioSpec {
    ScenarioSpec {
        name: "zone-storm".into(),
        seed: 8,
        cluster: ClusterTopology {
            pools: vec![
                NodePoolSpec {
                    count: 6,
                    cpus_per_node: 4,
                    core_mhz: 3000.0,
                    node_mem_mb: 4096,
                    zone: Some("core".into()),
                },
                NodePoolSpec {
                    count: 3,
                    cpus_per_node: 8,
                    core_mhz: 2400.0,
                    node_mem_mb: 16_384,
                    zone: Some("yard".into()),
                },
                NodePoolSpec {
                    count: 3,
                    cpus_per_node: 2,
                    core_mhz: 3600.0,
                    node_mem_mb: 2048,
                    zone: Some("edge".into()),
                },
            ],
        },
        timing: TimingSpec {
            horizon_secs: 24_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![
            small_app("storefront", IntensityTrace::constant(16.0), 8),
            small_app("search", IntensityTrace::constant(10.0), 6),
        ],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(240.0).expect("positive mean"),
            max_jobs: 80,
            mix: JobMix::uniform(batch_template("batch", 3500.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: Some(ChaosSpec {
            zone_storms: Some(slaq_sim::ZoneStormSpec {
                first_secs: 3000.0,
                period_secs: 6000.0,
                duration_secs: 1500.0,
                zones_per_storm: 1,
                node_fraction: 0.5,
            }),
            degradation: Some(slaq_sim::DegradationSpec {
                nodes: 2,
                from_secs: 8000.0,
                to_secs: 16000.0,
                cpu_factor: 0.6,
            }),
            ..ChaosSpec::default()
        }),
        overcommit: None,
        elasticity: None,
    }
}

/// Adversarial: two seeded flappers cycling down and up every 4800 s
/// under a tight 6-change budget — the regime where a churn-happy
/// controller would thrash and blow its budget re-placing the same
/// victims every cycle.
fn node_flap() -> ScenarioSpec {
    ScenarioSpec {
        name: "node-flap".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec {
            max_changes: Some(6),
            ..ControllerSpec::default()
        },
        apps: vec![small_app("storefront", IntensityTrace::constant(14.0), 8)],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(240.0).expect("positive mean"),
            max_jobs: 90,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: Some(ChaosSpec {
            flaps: Some(slaq_sim::FlapSpec {
                nodes: 2,
                first_secs: 2400.0,
                period_secs: 4800.0,
                down_secs: 900.0,
            }),
            ..ChaosSpec::default()
        }),
        overcommit: None,
        elasticity: None,
    }
}

/// Adversarial: an antagonist batch flood (periodic drops of ten short
/// jobs) on top of a modest resident stream, with vertical elasticity
/// resizing running jobs mid-flight — contention plus churn, the delta
/// solver's worst case.
fn antagonist_flood() -> ScenarioSpec {
    ScenarioSpec {
        name: "antagonist-flood".into(),
        seed: 8,
        cluster: ClusterTopology::homogeneous(6, 4, 3000.0, 4096),
        timing: TimingSpec {
            horizon_secs: 22_000.0,
            ..TimingSpec::default()
        },
        controller: ControllerSpec::default(),
        apps: vec![small_app("storefront", IntensityTrace::constant(14.0), 8)],
        job_streams: vec![JobStreamSpec {
            name: "batch".into(),
            arrivals: ArrivalProcess::poisson_constant(300.0).expect("positive mean"),
            max_jobs: 40,
            mix: JobMix::uniform(batch_template("batch", 4000.0, 1280)),
            seed_offset: 0,
        }],
        outages: vec![],
        chaos: Some(ChaosSpec {
            batch_floods: Some(slaq_sim::FloodSpec {
                first_secs: 3000.0,
                period_secs: 5000.0,
                batch_size: 10,
                max_jobs: 40,
                work_secs: 3000.0,
                mem_mb: 1280,
            }),
            ..ChaosSpec::default()
        }),
        overcommit: None,
        elasticity: Some(ElasticitySpec {
            first_secs: 1800.0,
            period_secs: 2400.0,
            grow_factor: 1.6,
            shrink_factor: 0.55,
            max_events: 6,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_named_presets() {
        let corpus = ScenarioSpec::corpus();
        assert_eq!(corpus.len(), ScenarioSpec::preset_names().len());
        assert!(corpus.len() >= 6);
        for (spec, name) in corpus.iter().zip(ScenarioSpec::preset_names()) {
            assert_eq!(&spec.name, name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(ScenarioSpec::preset("no-such-scenario").is_none());
    }

    // JSON round-trip coverage lives in tests/scenario_corpus.rs (the CI
    // corpus gate), which also asserts the serialization fixed point.

    #[test]
    fn every_preset_materializes() {
        for spec in ScenarioSpec::corpus() {
            let scenario = spec
                .materialize()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(scenario.cluster.len() as u32, spec.cluster.node_count());
            assert!(!scenario.jobs.is_empty(), "{}: no jobs", spec.name);
            // Arrivals sorted and inside the horizon.
            assert!(scenario.jobs.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(scenario
                .jobs
                .iter()
                .all(|(t, _)| t.as_secs() <= spec.timing.horizon_secs));
        }
    }

    #[test]
    fn validation_pinpoints_the_offending_section() {
        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.apps[0].u_cap = 1.5;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("apps[0]"), "{e}");

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.cluster.pools[0].count = 0;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("cluster.pools[0]"), "{e}");

        let mut s = ScenarioSpec::preset("hetero-pool").unwrap();
        s.outages[0].node = 99;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("outages[0]"), "{e}");

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.job_streams[0].max_jobs = 0;
        assert!(s.validate().is_err());

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.apps.clear();
        s.job_streams.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn validation_rejects_overlapping_outage_windows_on_one_node() {
        let mut s = ScenarioSpec::preset("hetero-pool").unwrap();
        let first = s.outages[0];
        // A second window on the same node starting inside the first.
        s.outages.push(OutageSpec {
            node: first.node,
            from_secs: (first.from_secs + first.to_secs) / 2.0,
            to_secs: first.to_secs + 500.0,
        });
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("overlaps"), "{e}");
        assert!(e.to_string().contains("outages[1]"), "{e}");
        // The same window on a different node is fine.
        s.outages[1].node = first.node + 1;
        s.validate().expect("disjoint nodes may share windows");
        // Touching windows (to == from) on one node are fine too.
        s.outages[1] = OutageSpec {
            node: first.node,
            from_secs: first.to_secs,
            to_secs: first.to_secs + 500.0,
        };
        s.validate().expect("back-to-back windows are not overlaps");
    }

    #[test]
    fn validation_names_the_adversarial_knob_sections() {
        let mut s = ScenarioSpec::preset("flash-crowd").unwrap();
        s.chaos
            .as_mut()
            .unwrap()
            .flash_crowds
            .as_mut()
            .unwrap()
            .surge = -1.0;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("chaos"), "{e}");
        assert!(e.to_string().contains("flash_crowds.surge"), "{e}");

        let mut s = ScenarioSpec::preset("flash-crowd").unwrap();
        s.overcommit.as_mut().unwrap().cpu_ratio = 0.5;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("overcommit"), "{e}");

        // Overbooking without the transactional cap is rejected: the
        // true-usage clip is only defined for capped app allocations.
        let mut s = ScenarioSpec::preset("flash-crowd").unwrap();
        s.timing.cap_transactional = false;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("cap_transactional"), "{e}");

        let mut s = ScenarioSpec::preset("antagonist-flood").unwrap();
        s.elasticity.as_mut().unwrap().grow_factor = 0.9;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("elasticity"), "{e}");
    }

    #[test]
    fn hetero_pool_materializes_all_pools_and_outage() {
        let spec = ScenarioSpec::preset("hetero-pool").unwrap();
        let scenario = spec.materialize().unwrap();
        assert_eq!(scenario.cluster.len(), 8);
        // Pool boundaries: node 4 is a fat box, node 6 a fast 2-way.
        let n4 = scenario.cluster.node(NodeId::new(4)).unwrap();
        assert_eq!(n4.num_cpus, 8);
        assert_eq!(n4.mem, MemMb::new(16_384));
        let n6 = scenario.cluster.node(NodeId::new(6)).unwrap();
        assert_eq!(n6.cpu_per_core, CpuMhz::new(3600.0));
        assert_eq!(scenario.outages.len(), 1);
        assert_eq!(scenario.outages[0].node, NodeId::new(0));
    }

    #[test]
    fn differentiation_mix_wires_importance_into_controller_config() {
        let spec = ScenarioSpec::preset("differentiation-mix").unwrap();
        let scenario = spec.materialize().unwrap();
        assert!(
            !scenario.controller.importance.is_empty(),
            "gold tier must surface as importance weights"
        );
        // Every weighted entity is a job with weight 2.0 (the gold tier),
        // and the weighted ids correspond to gold-short jobs by name.
        let gold_jobs: Vec<usize> = scenario
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.name.starts_with("gold-short"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(gold_jobs.len(), scenario.controller.importance.len());
        for i in &gold_jobs {
            let w = scenario
                .controller
                .importance
                .get(&EntityId::Job(JobId::new(*i as u32)))
                .copied();
            assert_eq!(w, Some(2.0), "job {i} should be gold-weighted");
        }
    }

    #[test]
    fn zone_table_maps_pools_to_sorted_zone_ids() {
        let spec = ScenarioSpec::preset("consolidation").unwrap();
        assert_eq!(spec.cluster.zone_count(), 3);
        let table = spec.cluster.zone_table();
        assert_eq!(table.len(), 12);
        // Labels rank alphabetically after the implicit zone 0:
        // core=1, edge=2, yard=3; pools are core×6, yard×3, edge×3.
        assert!(table[..6].iter().all(|&z| z == ZoneId::new(1)));
        assert!(table[6..9].iter().all(|&z| z == ZoneId::new(3)));
        assert!(table[9..].iter().all(|&z| z == ZoneId::new(2)));
        // Unlabeled fleets collapse to the single implicit zone.
        let plain = ScenarioSpec::preset("paper-small").unwrap();
        assert_eq!(plain.cluster.zone_count(), 1);
        assert!(plain
            .cluster
            .zone_table()
            .iter()
            .all(|&z| z == ZoneId::new(0)));
    }

    #[test]
    fn sharding_knob_lowers_onto_the_right_plan() {
        // Zones + labels → sharded; Zones without labels → global;
        // Global always global; Count{k} always fixed.
        let zoned = ScenarioSpec::preset("consolidation").unwrap();
        assert_eq!(
            zoned.materialize().unwrap().controller.sharding,
            ShardPlan::Zones(zoned.cluster.zone_table())
        );
        let mut forced = zoned.clone();
        forced.controller.shards = ShardingSpec::Global;
        assert_eq!(
            forced.materialize().unwrap().controller.sharding,
            ShardPlan::Single
        );
        let plain = ScenarioSpec::preset("paper-small").unwrap();
        assert_eq!(
            plain.materialize().unwrap().controller.sharding,
            ShardPlan::Single
        );
        let mut counted = plain.clone();
        counted.controller.shards = ShardingSpec::Count { count: 3 };
        assert_eq!(
            counted.materialize().unwrap().controller.sharding,
            ShardPlan::Fixed(3)
        );
    }

    #[test]
    fn pre_sharding_spec_files_still_parse_with_defaults() {
        // A file dumped before the `kind`/`shards`/`rebalance_budget`
        // knobs (and pool `zone` labels) existed must keep parsing, with
        // the new fields at their defaults — users pin spec files on
        // disk and a format break would rot every one of them.
        let spec = ScenarioSpec::preset("paper-small").unwrap();
        let mut json = spec.to_json().unwrap();
        for stale in [
            "\"kind\": \"Utility\",",
            ",\n    \"shards\": \"Zones\",\n    \"rebalance_budget\": 8",
            ",\n    \"pipeline\": \"Sync\"",
            ",\n    \"solve\": \"Batch\"",
            ",\n    \"routing\": \"Off\"",
            ",\n        \"zone\": null",
        ] {
            assert!(json.contains(stale), "fixture drifted: {stale}");
            json = json.replace(stale, "");
        }
        let back = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("legacy spec must parse: {e}"));
        assert_eq!(back.controller, spec.controller);
        assert_eq!(back.cluster, spec.cluster);
        back.validate().unwrap();
    }

    #[test]
    fn controller_section_validation_rejects_bad_knobs() {
        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.controller.shards = ShardingSpec::Count { count: 0 };
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("controller"), "{e}");

        let mut s = ScenarioSpec::preset("paper-small").unwrap();
        s.controller.kind = ControllerKind::Static {
            trans_fraction: 1.5,
        };
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("trans_fraction"), "{e}");
    }

    #[test]
    fn spec_named_baselines_run_and_differ_from_utility() {
        // The controller is spec data: the same scenario under fcfs must
        // run end to end through `ScenarioSpec::run` and (being
        // SLA-blind) not beat the utility controller on goals met.
        let mut spec = ScenarioSpec::preset("paper-small").unwrap();
        spec.timing.horizon_secs = spec.timing.control_period_secs * 6.0;
        let utility = spec.run().unwrap();
        spec.controller.kind = ControllerKind::Fcfs;
        let fcfs = spec.run().unwrap();
        assert_eq!(
            utility.job_stats.submitted, fcfs.job_stats.submitted,
            "same workload"
        );
        assert!(fcfs.cycles >= 6);
        // The kinds must actually select different controllers: only the
        // utility controller equalizes (and records the water level), and
        // SLA-blind FCFS cannot beat it on goals met.
        assert!(!utility.metrics.series("water_level").is_empty());
        assert!(
            fcfs.metrics.series("water_level").is_empty(),
            "fcfs must not run the utility equalizer"
        );
        assert!(fcfs.job_stats.goals_met <= utility.job_stats.goals_met);
        spec.controller.kind = ControllerKind::Static {
            trans_fraction: 0.4,
        };
        let fenced = spec.run().unwrap();
        assert!(fenced.cycles >= 6);
        assert_eq!(spec.controller.kind.name(), "static");
    }

    #[test]
    fn spec_horizon_is_data_not_code() {
        // Truncating the horizon is a field write — the property sweeps
        // and benches rely on.
        let mut spec = ScenarioSpec::preset("paper-small").unwrap();
        spec.timing.horizon_secs = 1200.0;
        let scenario = spec.materialize().unwrap();
        assert!(scenario.jobs.iter().all(|(t, _)| t.as_secs() <= 1200.0));
    }
}
