//! Quantitative shape metrics for the Figure 1/2 reproduction.
//!
//! The reproduction contract is about *shape*, not absolute MHz: who wins
//! early, when the curves cross, how tightly utilities equalize under
//! contention, and whether CPU returns to the transactional workload when
//! the job stream thins. These metrics make those claims testable.

use serde::{Deserialize, Serialize};
use slaq_sim::SimReport;
use slaq_types::SimTime;

/// Shape summary of one paper-experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeMetrics {
    /// First instant at which the controller starts withholding CPU from
    /// the transactional workload (target < 95 % of demand) — the paper's
    /// "as soon as the hypothetical utility … becomes lower … our
    /// algorithm starts to reduce the allocation for the transactional
    /// workload". `None` if stealing never starts.
    pub crossover_secs: Option<f64>,
    /// Mean |u_trans − u_jobs| over the contention window (from crossover
    /// to the tail start) — small means utilities equalized.
    pub equalization_gap: Option<f64>,
    /// Mean jobs-allocation ÷ transactional-allocation over the
    /// contention window — large means the CPU split is uneven even
    /// though utilities are equal (Fig. 2 vs Fig. 1).
    pub contention_alloc_ratio: Option<f64>,
    /// Mean transactional allocation in the early (pre-crossover) window.
    pub early_trans_alloc: f64,
    /// Mean transactional demand in the early window (early allocation
    /// should track demand: no contention yet).
    pub early_trans_demand: f64,
    /// Transactional allocation regained in the tail versus its
    /// contention-window mean (≥ 1 means CPU flowed back).
    pub tail_recovery_ratio: Option<f64>,
    /// Peak of the jobs' demand-for-maximum-utility series.
    pub peak_jobs_demand: f64,
    /// Mean hypothetical utility of jobs in the early window.
    pub early_jobs_utility: f64,
}

/// Compute shape metrics. `tail_start` is the instant the job submission
/// rate drops (the experiment's recovery phase).
pub fn shape_metrics(report: &SimReport, tail_start: SimTime, horizon: SimTime) -> ShapeMetrics {
    let m = &report.metrics;
    let ut = m.series("trans_utility");
    let uj = m.series("jobs_hypo_utility");

    // Stealing starts when the equalized transactional target drops below
    // its demand (skip the cold-start cycle at t=0).
    let demand = m.series("trans_demand");
    let mut crossover = None;
    for &(t, target) in m.series("trans_target") {
        if t <= 0.0 {
            continue;
        }
        if let Some(d) = value_at(demand, t) {
            if d > 0.0 && target < 0.95 * d {
                crossover = Some(t);
                break;
            }
        }
    }

    let early_end = crossover.unwrap_or(tail_start.as_secs());
    let early_window = |name: &str| {
        m.mean_over(name, SimTime::ZERO, SimTime::from_secs(early_end))
            .unwrap_or(0.0)
    };
    let early_trans_alloc = early_window("trans_alloc");
    let early_trans_demand = early_window("trans_demand");
    let early_jobs_utility = early_window("jobs_hypo_utility");

    let (equalization_gap, contention_alloc_ratio, contention_trans_alloc) = match crossover {
        Some(x) if x < tail_start.as_secs() => {
            let from = SimTime::from_secs(x);
            let gaps: Vec<f64> = uj
                .iter()
                .filter(|&&(t, _)| t >= x && t <= tail_start.as_secs())
                .filter_map(|&(t, ju)| value_at(ut, t).map(|tu| (tu - ju).abs()))
                .collect();
            let gap = if gaps.is_empty() {
                None
            } else {
                Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
            };
            let ja = m.mean_over("jobs_alloc", from, tail_start);
            let ta = m.mean_over("trans_alloc", from, tail_start);
            let ratio = match (ja, ta) {
                (Some(j), Some(t)) if t > 0.0 => Some(j / t),
                _ => None,
            };
            (gap, ratio, ta)
        }
        _ => (None, None, None),
    };

    let tail_recovery_ratio = contention_trans_alloc.and_then(|contention| {
        // Compare the last quarter of the tail against contention.
        let tail_from =
            SimTime::from_secs(tail_start.as_secs() + 0.5 * (horizon - tail_start).as_secs());
        m.mean_over("trans_alloc", tail_from, horizon)
            .map(|tail| tail / contention.max(1.0))
    });

    ShapeMetrics {
        crossover_secs: crossover,
        equalization_gap,
        contention_alloc_ratio,
        early_trans_alloc,
        early_trans_demand,
        tail_recovery_ratio,
        peak_jobs_demand: m.max("jobs_demand").unwrap_or(0.0),
        early_jobs_utility,
    }
}

/// Step-interpolated lookup of a series at instant `t`.
fn value_at(series: &[(f64, f64)], t: f64) -> Option<f64> {
    let mut last = None;
    for &(ts, v) in series {
        if ts <= t + 1e-9 {
            last = Some(v);
        } else {
            break;
        }
    }
    last
}

impl std::fmt::Display for ShapeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "shape metrics:")?;
        match self.crossover_secs {
            Some(x) => writeln!(f, "  crossover (jobs dip below trans): t = {x:.0} s")?,
            None => writeln!(f, "  crossover: never")?,
        }
        if let Some(g) = self.equalization_gap {
            writeln!(f, "  mean |u_trans - u_jobs| under contention: {g:.3}")?;
        }
        if let Some(r) = self.contention_alloc_ratio {
            writeln!(f, "  jobs/trans CPU ratio under contention: {r:.2}x")?;
        }
        writeln!(
            f,
            "  early trans alloc vs demand: {:.0} / {:.0} MHz",
            self.early_trans_alloc, self.early_trans_demand
        )?;
        writeln!(
            f,
            "  early jobs hypothetical utility: {:.3}",
            self.early_jobs_utility
        )?;
        if let Some(r) = self.tail_recovery_ratio {
            writeln!(
                f,
                "  tail trans-alloc recovery: {r:.2}x of contention level"
            )?;
        }
        write!(f, "  peak jobs demand: {:.0} MHz", self.peak_jobs_demand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::run_paper_experiment;
    use slaq_core::scenario::PaperParams;

    #[test]
    fn value_at_steps() {
        let s = [(0.0, 1.0), (10.0, 2.0)];
        assert_eq!(value_at(&s, -1.0), None);
        assert_eq!(value_at(&s, 0.0), Some(1.0));
        assert_eq!(value_at(&s, 5.0), Some(1.0));
        assert_eq!(value_at(&s, 50.0), Some(2.0));
    }

    #[test]
    fn small_run_shape_has_the_paper_phases() {
        let p = PaperParams::small();
        let report = run_paper_experiment(&p).unwrap();
        let shape = shape_metrics(
            &report,
            SimTime::from_secs(p.tail_start_secs),
            SimTime::from_secs(p.horizon_secs),
        );
        // Phase 1: jobs start happy.
        assert!(
            shape.early_jobs_utility > 0.7,
            "early jobs utility {}",
            shape.early_jobs_utility
        );
        // Phase 2: crowding forces a crossover before the tail.
        let x = shape.crossover_secs.expect("crossover must happen");
        assert!(x < p.tail_start_secs, "crossover at {x}");
        // Phase 3: utilities equalized while CPU is split unevenly.
        assert!(
            shape.equalization_gap.unwrap() < 0.2,
            "gap {:?}",
            shape.equalization_gap
        );
        // Display renders.
        let text = shape.to_string();
        assert!(text.contains("crossover"));
    }
}
