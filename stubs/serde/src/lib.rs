//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal serialization framework under the `serde` name. It implements a
//! value-tree data model (`Value`) rather than serde's visitor machinery:
//! `Serialize` lowers a type to a [`Value`], `Deserialize` raises it back.
//! The `serde_json` stand-in then renders/parses `Value` as JSON.
//!
//! Supported surface (everything the slaq workspace uses):
//! `#[derive(Serialize, Deserialize)]` on named structs, tuple structs and
//! enums (unit / newtype / tuple / struct variants), `#[serde(transparent)]`,
//! primitives, `String`, `Option`, `Vec`, arrays-as-vecs, tuples up to 4,
//! and `BTreeMap` with integer-like or string keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (rendered without a decimal point).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

static NULL: Value = Value::Null;

/// Look up a key in an object value; missing keys read as `null` so that
/// `Option` fields tolerate omission (matching serde's common configs).
pub fn obj_get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    match v {
        Value::Obj(pairs) => Ok(pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)),
        other => Err(DeError(format!("expected object, got {other:?}"))),
    }
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lower to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be raised back from a [`Value`].
pub trait Deserialize: Sized {
    /// Raise from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

// `Value` round-trips through itself, so callers can parse arbitrary
// JSON (e.g. a generated trace file) into the value tree and inspect it
// structurally without declaring a matching type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(DeError(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every value this workspace serializes (wall-clock
        // micros, counters); saturate rather than panic on the rest.
        Value::Int((*self).min(i128::MAX as u128) as i128)
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u128),
            other => Err(DeError(format!("expected unsigned integer, got {other:?}"))),
        }
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n; // positional
                            $t::from_value(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?
                        },)+))
                    }
                    other => Err(DeError(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Render a map key: JSON object keys must be strings, so integer-like
/// keys (ids with `#[serde(transparent)]`) are stringified.
fn key_to_string(v: &Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(DeError(format!("unsupported map key {other:?}"))),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(i) = s.parse::<i128>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(s.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_value()).expect("map key must be string-like"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}
