//! Offline stand-in for `rand_chacha`, backed by a genuine ChaCha12 core
//! (IETF variant, 32-bit words, 12 rounds). The keystream will not match
//! the real `rand_chacha` crate bit-for-bit (seeding conventions differ),
//! but it is a full-quality ChaCha stream and fully deterministic per seed,
//! which is all the workload generators require.

pub use rand::rand_core;
use rand::rand_core::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

/// ChaCha with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key + nonce state words 4..16 of the initial block.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Construct from a full 32-byte key.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Words 12..16: block counter + nonce, all zero initially.
        ChaCha12Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s0)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *b = w.wrapping_add(*s0);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.word = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as rand_core does for integer seeds.
        let mut s = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        ChaCha12Rng::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn keystream_is_not_constant() {
        let mut r = ChaCha12Rng::seed_from_u64(0);
        let first = r.next_u64();
        assert!((0..1000).any(|_| r.next_u64() != first));
    }
}
