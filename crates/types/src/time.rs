//! Simulation time: absolute instants and durations, in seconds.
//!
//! The paper's controller operates on a 600-second control cycle over a
//! ~72 000-second experiment; second (and sub-second) resolution as `f64`
//! is ample and keeps fluid-rate arithmetic (`work = power × time`) exact
//! enough for the solvers downstream.

use crate::units::fcmp;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in seconds since start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(pub f64);

/// A span of simulation time, in seconds. May be zero but never negative
/// when produced by this crate's constructors.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimDuration(pub f64);

impl SimTime {
    /// The experiment origin.
    pub const ZERO: SimTime = SimTime(0.0);
    /// A sentinel for "never happens" (e.g. a job that cannot complete at
    /// zero allocation). Compares greater than every finite instant.
    pub const NEVER: SimTime = SimTime(f64::INFINITY);

    /// Construct from seconds since the experiment origin.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Seconds since the experiment origin.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` for the [`SimTime::NEVER`] sentinel.
    #[inline]
    pub fn is_never(self) -> bool {
        self.0.is_infinite()
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Total-order comparison (NaN-free inputs assumed).
    #[inline]
    pub fn total_cmp(self, other: SimTime) -> Ordering {
        fcmp(self.0, other.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0.0);
    /// Unbounded span (pairs with [`SimTime::NEVER`]).
    pub const INFINITE: SimDuration = SimDuration(f64::INFINITY);

    /// Construct from seconds; negative inputs are clamped to zero.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimDuration must not be NaN");
        SimDuration(secs.max(0.0))
    }

    /// Construct from whole minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Construct from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds in this span.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// `true` if the span is (numerically) zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0.abs() < 1e-9
    }

    /// `true` for the [`SimDuration::INFINITE`] sentinel.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Total-order comparison.
    #[inline]
    pub fn total_cmp(self, other: SimDuration) -> Ordering {
        fcmp(self.0, other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_never() {
            write!(f, "t=never")
        } else {
            write!(f, "t={:.1}s", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "inf s")
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Difference between two instants, clamped at zero (a duration is
    /// never negative).
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = (self.0 - rhs.0).max(0.0);
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_secs(600.0) + SimDuration::from_mins(10.0);
        assert_eq!(t.as_secs(), 1200.0);
    }

    #[test]
    fn instant_difference_clamps_at_zero() {
        let a = SimTime::from_secs(100.0);
        let b = SimTime::from_secs(40.0);
        assert_eq!((a - b).as_secs(), 60.0);
        assert_eq!((b - a).as_secs(), 0.0);
        assert_eq!(b.since(a), SimDuration::ZERO);
    }

    #[test]
    fn never_sentinel_dominates() {
        assert!(SimTime::NEVER.is_never());
        assert!(SimTime::NEVER > SimTime::from_secs(1e12));
        assert!((SimTime::NEVER - SimTime::ZERO).is_infinite());
    }

    #[test]
    fn duration_constructors_convert_units() {
        assert_eq!(SimDuration::from_hours(2.0).as_secs(), 7200.0);
        assert_eq!(SimDuration::from_mins(1.5).as_secs(), 90.0);
        assert_eq!(SimDuration::from_secs(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_ratio_is_dimensionless() {
        let cycle = SimDuration::from_secs(600.0);
        let horizon = SimDuration::from_hours(20.0);
        assert_eq!(horizon / cycle, 120.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(12.34).to_string(), "t=12.3s");
        assert_eq!(SimTime::NEVER.to_string(), "t=never");
        assert_eq!(SimDuration::from_secs(600.0).to_string(), "600.0s");
        assert_eq!(SimDuration::INFINITE.to_string(), "inf s");
    }

    proptest! {
        #[test]
        fn prop_since_is_nonnegative(a in 0.0..1e9f64, b in 0.0..1e9f64) {
            prop_assert!(SimTime::from_secs(a).since(SimTime::from_secs(b)).as_secs() >= 0.0);
        }

        #[test]
        fn prop_add_then_since_roundtrips(t in 0.0..1e9f64, d in 0.0..1e6f64) {
            let start = SimTime::from_secs(t);
            let end = start + SimDuration::from_secs(d);
            prop_assert!((end.since(start).as_secs() - d).abs() < 1e-6 * d.max(1.0));
        }

        #[test]
        fn prop_duration_sub_never_negative(a in 0.0..1e6f64, b in 0.0..1e6f64) {
            let d = SimDuration::from_secs(a) - SimDuration::from_secs(b);
            prop_assert!(d.as_secs() >= 0.0);
        }
    }
}
