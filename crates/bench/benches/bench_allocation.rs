//! Allocation-subproblem benchmarks: the exact CPU division for a fixed
//! placement (two-phase Dinic on the transportation network).
//!
//! Two series per shape:
//! * `cold` — a fresh [`Allocator`] per call: full network construction
//!   plus the flow solve;
//! * `warm` — one long-lived [`Allocator`] re-solving the same topology
//!   with changing demands: the capacity-rewrite path a steady-state
//!   controller cycle takes (zero graph construction, zero allocation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slaq_experiments::sweeps::synthetic_problem;
use slaq_placement::problem::PlacementProblem;
use slaq_placement::{Allocator, Placement, Solver};
use std::hint::black_box;

/// Derive a realistic fixed placement (hosts + job nodes, dense indices)
/// by running the real solver once.
fn dense_placement(problem: &PlacementProblem) -> (Vec<Vec<usize>>, Vec<Option<usize>>) {
    let outcome = Solver::new().solve(problem, &Placement::empty());
    let node_ix = slaq_types::Interner::new(problem.nodes.iter().map(|n| n.id));
    let node_dense = |id: slaq_types::NodeId| -> usize { node_ix.dense(id).expect("known node") };
    let app_hosts: Vec<Vec<usize>> = problem
        .apps
        .iter()
        .map(|a| {
            outcome
                .placement
                .apps
                .get(&a.id)
                .map(|m| m.keys().map(|&n| node_dense(n)).collect())
                .unwrap_or_default()
        })
        .collect();
    let job_nodes: Vec<Option<usize>> = problem
        .jobs
        .iter()
        .map(|j| outcome.placement.job_node(j.id).map(node_dense))
        .collect();
    (app_hosts, job_nodes)
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group.sample_size(30);
    for &(nodes, jobs) in &[(25u32, 120u32), (100, 600), (250, 1500), (500, 3000)] {
        let problem = synthetic_problem(nodes, jobs, 2);
        let (app_hosts, job_nodes) = dense_placement(&problem);

        group.bench_with_input(
            BenchmarkId::new("cold", format!("{nodes}n_{jobs}j")),
            &problem,
            |b, p| {
                b.iter(|| {
                    let placement = Allocator::new().allocate_dense(
                        &p.nodes,
                        &p.apps,
                        black_box(&app_hosts),
                        &p.jobs,
                        black_box(&job_nodes),
                        p.config.mhz_unit,
                    );
                    black_box(placement.jobs.len())
                })
            },
        );

        // Warm: same topology, demands scaled per iteration so the solve
        // is never trivially cached, through one persistent Allocator.
        let mut warm = Allocator::new();
        warm.allocate_dense(
            &problem.nodes,
            &problem.apps,
            &app_hosts,
            &problem.jobs,
            &job_nodes,
            problem.config.mhz_unit,
        );
        let mut scaled = problem.clone();
        group.bench_with_input(
            BenchmarkId::new("warm", format!("{nodes}n_{jobs}j")),
            &problem,
            |b, p| {
                let mut tick = 0u64;
                b.iter(|| {
                    tick += 1;
                    let scale = 0.85 + 0.01 * (tick % 30) as f64;
                    for (jr, base) in scaled.jobs.iter_mut().zip(&p.jobs) {
                        jr.demand = base.demand * scale;
                    }
                    let placement = warm.allocate_dense(
                        &p.nodes,
                        &p.apps,
                        black_box(&app_hosts),
                        &scaled.jobs,
                        black_box(&job_nodes),
                        p.config.mhz_unit,
                    );
                    black_box(placement.jobs.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
