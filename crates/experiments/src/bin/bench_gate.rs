//! Solver bench gate: measure the warm-solve hot paths plus the
//! end-to-end control-cycle latency (snapshot → solve → actuate, sync
//! vs. overlapped pipeline), persist the numbers to a tracked baseline
//! file, and fail CI on regressions.
//!
//! ```text
//! # measure and print
//! cargo run --release -p slaq-experiments --bin bench_gate
//!
//! # (re)write the tracked baseline
//! cargo run --release -p slaq-experiments --bin bench_gate -- --update BENCH_baseline.json
//!
//! # CI: fail when any warm solve regresses by more than the tolerance
//! cargo run --release -p slaq-experiments --bin bench_gate -- --check BENCH_baseline.json
//! ```
//!
//! The gate compares medians (robust against scheduler noise) with
//! `BENCH_GATE_TOLERANCE` (default 0.25 = +25 %) of slack, judged both
//! raw and after dividing out the run's geometric-mean ratio to the
//! baseline — a machine-speed normalizer, so a uniformly slower CI
//! runner passes while a single series regressing against its siblings
//! fails. A same-run hardware-independent invariant (the delta solve
//! beats the batch warm solve ≥ 5× under 1 % churn at 1000n/6000j)
//! backs the absolute numbers up, and `BENCH_GATE_HARD_CAP` bounds any
//! single series' raw regression outright.

use serde::{Deserialize, Serialize};
use slaq_core::{ObserveSpec, PipelineSpec, ScenarioSpec};
use slaq_experiments::sweeps::synthetic_problem;
use slaq_placement::{
    CandidateEngine, Placement, PlacementProblem, ShardPlan, ShardedSolver, SolveMode, Solver,
};
use std::time::Instant;

/// One measured series.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    /// Series name (shape + engine).
    name: String,
    /// Median wall time of one warm solve, microseconds.
    micros: f64,
}

/// The tracked baseline file's schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchBaseline {
    /// All gated series.
    entries: Vec<BenchEntry>,
}

/// Prepare the steady-state re-solve inputs for a shape: the cold
/// solution with every job marked running becomes the previous placement.
fn warm_inputs(nodes: u32, jobs: u32) -> (PlacementProblem, Placement) {
    let problem = synthetic_problem(nodes, jobs, 1);
    let cold = slaq_placement::solve(&problem, &Placement::empty());
    let mut warm = problem;
    for j in &mut warm.jobs {
        j.running_on = cold.placement.job_node(j.id);
    }
    (warm, cold.placement)
}

/// Median wall time (µs) of `solve` after `warmup` priming calls.
fn measure(mut solve: impl FnMut() -> usize, warmup: usize, samples: usize) -> f64 {
    for _ in 0..warmup {
        std::hint::black_box(solve());
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(solve());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn run_benches() -> Vec<BenchEntry> {
    let shapes: &[(u32, u32)] = &[(100, 600), (500, 3000), (1000, 6000)];
    let mut entries = Vec::new();
    for &(nodes, jobs) in shapes {
        let (warm, prev) = warm_inputs(nodes, jobs);
        let mut global = Solver::new();
        global.solve(&warm, &prev);
        let micros = measure(|| global.solve(&warm, &prev).changes.len(), 3, 30);
        entries.push(BenchEntry {
            name: format!("warm_global_{nodes}n_{jobs}j"),
            micros,
        });
        // Heap-vs-scan, warm: the same warm solve through the pre-heap
        // linear scans. Since step 3's failed-scan memo, the steady
        // state runs almost no candidate scans for either engine, so
        // these series are baseline-gated guards only (see the retired-
        // invariants note on `relative_invariants_hold`).
        if nodes >= 500 {
            let mut scan = Solver::with_engine(CandidateEngine::Scan);
            scan.solve(&warm, &prev);
            let micros = measure(|| scan.solve(&warm, &prev).changes.len(), 3, 30);
            entries.push(BenchEntry {
                name: format!("warm_scan_{nodes}n_{jobs}j"),
                micros,
            });
        }
        let mut sharded = ShardedSolver::new(ShardPlan::Fixed(8), 16);
        sharded.solve(&warm, &prev);
        let micros = measure(|| sharded.solve(&warm, &prev).changes.len(), 3, 30);
        entries.push(BenchEntry {
            name: format!("warm_sharded8_{nodes}n_{jobs}j"),
            micros,
        });
    }
    // The 10× scale point, global engine only: the linear scan would
    // take O(J·N) ≈ 600 M candidate probes per solve here, and eight
    // sequential lanes just multiply the merge cost, so neither earns a
    // series at this shape. Fewer samples keep the gate's runtime sane;
    // medians stay stable because one solve is long enough to average
    // out scheduler noise on its own.
    {
        let (nodes, jobs) = (10_000u32, 60_000u32);
        let (warm, prev) = warm_inputs(nodes, jobs);
        let mut global = Solver::new();
        global.solve(&warm, &prev);
        let micros = measure(|| global.solve(&warm, &prev).changes.len(), 1, 10);
        entries.push(BenchEntry {
            name: format!("warm_global_{nodes}n_{jobs}j"),
            micros,
        });
    }
    entries.extend(delta_entries());
    entries.extend(routing_entries());
    entries.extend(obs_entries());
    entries.extend(cycle_latency_entries());
    entries
}

/// Observability-plane series: the identical warm solve with a live
/// recorder attached. The obs-*off* cost needs no series of its own —
/// every warm series above runs with the recorder compiled in and
/// disabled, so the pre-instrumentation baseline medians in
/// `BENCH_baseline.json` (deliberately not re-recorded when this series
/// landed) already gate the disabled plane's overhead to within the
/// ordinary tolerance. This series prices the *enabled* plane: eight
/// step spans, the flow-phase spans and a handful of counter bumps per
/// solve, pinned against the obs-off twin by the same-run invariant in
/// `relative_invariants_hold`.
fn obs_entries() -> Vec<BenchEntry> {
    let (nodes, jobs) = (1000u32, 6000u32);
    let (warm, prev) = warm_inputs(nodes, jobs);
    let mut solver = Solver::new();
    solver.set_recorder(slaq_obs::Recorder::enabled());
    solver.solve(&warm, &prev);
    let micros = measure(|| solver.solve(&warm, &prev).changes.len(), 3, 30);
    vec![BenchEntry {
        name: format!("warm_global_obs_{nodes}n_{jobs}j"),
        micros,
    }]
}

/// Routing-tier series: one full control cycle of request routing at
/// the 1000-node fleet scale — 50 transactional apps × 20 live
/// instances each, 20 000 requests per app, so ~1 M requests cross the
/// tier per measured cycle. Requests are aggregated counts (the router
/// scores chunk shares, never individual requests), so the cost is
/// driven by apps × chunks × instances, not by request volume — which
/// is exactly what the same-run invariant in `relative_invariants_hold`
/// pins against the warm solve.
fn routing_entries() -> Vec<BenchEntry> {
    use slaq_routing::{RouterConfig, RoutingTier};
    use slaq_types::{AppId, NodeId};
    let apps = 50u32;
    let per_app = 20u32;
    let requests_per_app = 20_000u64;
    let fleets: Vec<(AppId, Vec<(NodeId, f64)>)> = (0..apps)
        .map(|a| {
            let instances = (0..per_app)
                .map(|i| {
                    // Spread instances over the 1000-node fleet with a
                    // skewed capacity mix, id-sorted as the tier expects.
                    let node = (a * 20 + i * 7) % 1000;
                    (NodeId::new(node), 2000.0 + ((i * 7919) % 1600) as f64)
                })
                .collect::<std::collections::BTreeMap<_, _>>()
                .into_iter()
                .collect();
            (AppId::new(a), instances)
        })
        .collect();
    let mut tier = RoutingTier::new(RouterConfig::default());
    let micros = measure(
        || {
            let mut routed = 0usize;
            for (app, instances) in &fleets {
                let out = tier.route_app(*app, requests_per_app, instances);
                routed += out.shares.len();
            }
            routed
        },
        3,
        30,
    );
    vec![BenchEntry {
        name: "route_cycle_1000n_50a_1m".into(),
        micros,
    }]
}

/// Delta-solve series: a warm delta-mode solver re-solving under
/// synthetic demand churn. The shape is jobs-only (`apps = 0`) because
/// app-level flow keeps hosts contended and the canonical fast path
/// disengaged — exactly the regime where delta mode falls back to the
/// batch path, which `delta_cold` already prices. The churn series
/// rotate a fixed fraction of job demands between solves, so each
/// measured call pays diff + flow surgery proportional to churn, not to
/// fleet size. Since `synthetic_problem` derives priorities from the
/// job index (not demand), demand churn never perturbs the solver's
/// warm sort orders.
fn delta_entries() -> Vec<BenchEntry> {
    let (nodes, jobs) = (1000u32, 6000u32);
    let mut entries = Vec::new();
    let problem = synthetic_problem(nodes, jobs, 0);
    let cold = slaq_placement::solve(&problem, &Placement::empty());
    let mut warm = problem;
    for j in &mut warm.jobs {
        j.running_on = cold.placement.job_node(j.id);
    }
    let prev = cold.placement;

    // Batch reference on the identical jobs-only problem, under the
    // identical churn schedule as the churn1 series below: the honest
    // same-problem denominator for the churn-proportionality invariant.
    {
        let mut warm = warm.clone();
        let mut solver = Solver::new();
        solver.solve(&warm, &prev);
        let n_churn = ((jobs as f64 * 0.01) as usize).max(1);
        let mut round = 0usize;
        let micros = measure(
            || {
                round += 1;
                for k in 0..n_churn {
                    let i = (round * n_churn + k) % warm.jobs.len();
                    warm.jobs[i].demand = slaq_types::units::CpuMhz(
                        600.0 + 2400.0 * (((i * 7919 + round * 13) % 100) as f64) / 100.0,
                    );
                }
                solver.solve(&warm, &prev).changes.len()
            },
            3,
            30,
        );
        entries.push(BenchEntry {
            name: format!("delta_batchref_{nodes}n_{jobs}j"),
            micros,
        });
    }

    // Cold: the first cycle in delta mode has no capture to lean on and
    // runs the full batch path (plus the canonical-capture audit) — the
    // price of entry, gated so it never silently balloons.
    let micros = measure(
        || {
            Solver::with_mode(SolveMode::Delta)
                .solve(&warm, &prev)
                .changes
                .len()
        },
        1,
        10,
    );
    entries.push(BenchEntry {
        name: format!("delta_cold_{nodes}n_{jobs}j"),
        micros,
    });

    for (label, fraction) in [("churn1", 0.01f64), ("churn10", 0.10)] {
        let mut warm = warm.clone();
        let mut solver = Solver::with_mode(SolveMode::Delta);
        solver.solve(&warm, &prev);
        let n_churn = ((jobs as f64 * fraction) as usize).max(1);
        let mut round = 0usize;
        let micros = measure(
            || {
                round += 1;
                for k in 0..n_churn {
                    let i = (round * n_churn + k) % warm.jobs.len();
                    warm.jobs[i].demand = slaq_types::units::CpuMhz(
                        600.0 + 2400.0 * (((i * 7919 + round * 13) % 100) as f64) / 100.0,
                    );
                }
                solver.solve(&warm, &prev).changes.len()
            },
            3,
            30,
        );
        assert!(
            solver.delta_stats().hits > 0,
            "delta_{label}: fast path never engaged — the series would be \
             measuring batch fallbacks"
        );
        entries.push(BenchEntry {
            name: format!("delta_{label}_{nodes}n_{jobs}j"),
            micros,
        });
    }
    entries
}

/// End-to-end control-cycle latency (snapshot → solve → actuate) through
/// the full simulator, per pipeline mode: median over whole short runs
/// of `paper-small`, divided by the cycle count. Unlike the warm-solve
/// medians above, this covers the entire control plane — sensing,
/// snapshot capture, the solve, reconciliation and enactment — so a
/// regression anywhere in the cycle path trips the same ±25 % gate.
fn cycle_latency_entries() -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    // The `sync_obs` variant is the same sync cycle with the recorder
    // live end to end (every phase span, solver step span and counter
    // firing); the same-run invariant pins it against plain `sync` so
    // the enabled plane can never quietly grow into a cycle-level cost.
    // The `audit` variant is the same observed cycle measured under its
    // own baseline-tracked name now that observe = "On" also runs the
    // SLA plane — per-app SLO tracking, the violation-attribution pass
    // and the decision audit ring — so a regression in *that* layer is
    // attributed by name rather than smeared into `sync_obs`, and the
    // audit-on ≤ 1.5× obs-off bound gets its own same-run invariant.
    for (label, mode, observe) in [
        ("sync", PipelineSpec::Sync, ObserveSpec::Off),
        ("overlap1", PipelineSpec::overlap(1), ObserveSpec::Off),
        ("sync_obs", PipelineSpec::Sync, ObserveSpec::On),
        ("audit", PipelineSpec::Sync, ObserveSpec::On),
    ] {
        let mut spec = ScenarioSpec::preset("paper-small").expect("preset exists");
        spec.controller.pipeline = mode;
        spec.controller.observe = observe;
        spec.timing.cap_to_cycles(10);
        let scenario = spec.materialize().expect("preset is valid");
        let mut times: Vec<f64> = (0..7)
            .map(|_| {
                let mut controller = scenario.controller();
                let mut sim = scenario.build().expect("preset builds");
                let start = Instant::now();
                let report = sim.run(controller.as_mut()).expect("preset runs");
                start.elapsed().as_secs_f64() * 1e6 / report.cycles.max(1) as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        entries.push(BenchEntry {
            name: format!("cycle_{label}_paper_small"),
            micros: times[times.len() / 2],
        });
    }
    // The adversarial twin: the same end-to-end cycle measurement on the
    // `zone-storm` preset — correlated zone outages plus mid-run capacity
    // dips driving the fault paths (dead-node filtering, suspension,
    // dip-scaled capacities) every few cycles. Baseline-gated like the
    // rest, and pinned against the friendly sync cycle by the same-run
    // ≤ 3x invariant below so chaos handling can never quietly become a
    // multiple of the control cycle.
    {
        let mut spec = ScenarioSpec::preset("zone-storm").expect("preset exists");
        spec.timing.cap_to_cycles(10);
        let scenario = spec.materialize().expect("preset is valid");
        let mut times: Vec<f64> = (0..7)
            .map(|_| {
                let mut controller = scenario.controller();
                let mut sim = scenario.build().expect("preset builds");
                let start = Instant::now();
                let report = sim.run(controller.as_mut()).expect("preset runs");
                start.elapsed().as_secs_f64() * 1e6 / report.cycles.max(1) as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        entries.push(BenchEntry {
            name: "cycle_chaos_zone_storm".into(),
            micros: times[times.len() / 2],
        });
    }
    entries
}

fn print_table(entries: &[BenchEntry], baseline: Option<&BenchBaseline>) {
    println!(
        "{:<32} {:>12} {:>12} {:>8}",
        "series", "now (µs)", "base (µs)", "ratio"
    );
    for e in entries {
        let base = baseline.and_then(|b| b.entries.iter().find(|x| x.name == e.name));
        match base {
            Some(b) if b.micros > 0.0 => println!(
                "{:<32} {:>12.1} {:>12.1} {:>8.2}",
                e.name,
                e.micros,
                b.micros,
                e.micros / b.micros
            ),
            _ => println!("{:<32} {:>12.1} {:>12} {:>8}", e.name, e.micros, "-", "-"),
        }
    }
}

/// Hardware-independent invariants, compared within the *same* run on
/// the *same* machine (unlike the baseline medians, which were recorded
/// on whatever box last ran `--update`): the delta solve must beat the
/// batch warm solve ≥ 5× under 1 % churn, the routing tier must stay a
/// rounding error next to the warm solve, and the *enabled*
/// observability plane must stay within 1.5× of its obs-off twin at
/// both the warm-solve and full-cycle scopes. These hold regardless of
/// how fast the runner is, so they keep teeth even when absolute
/// numbers drift with hardware.
///
/// (Two retired invariants, for the record. Pre-heap: sharded beats
/// global at 500n+ — gone once `O(log N)` per-job selection made the
/// global solve faster than eight sequential lanes plus merge overhead;
/// sharding's win returns with real thread parallelism. Pre-memo: heap
/// ≥ 1.3× faster than scan on the warm solve — gone once step 3's
/// failed-scan memo collapsed the steady state's thousands of failing
/// candidate scans into one for *both* engines. The heap's pinned win
/// was exactly those failing memory-blocked queries (pruned at the
/// root in O(1)); with the memo answering them for everyone, neither a
/// warm nor a cold shape separates the engines here any more — on this
/// synthetic's heavily tied keys a cold heap solve even loses to the
/// tight linear scan. The scan series stay baseline-gated so an engine
/// regression still shows; the differential tests keep pinning their
/// bit-identical outcomes.)
fn relative_invariants_hold(entries: &[BenchEntry]) -> bool {
    let find = |name: &str| entries.iter().find(|e| e.name == name).map(|e| e.micros);
    let mut ok = true;
    // Delta solve: re-solving after 1 % demand churn must beat the
    // batch warm solve at the same 1000n/6000j scale by ≥ 5× — the
    // churn-proportional claim, pinned within one run so it holds on
    // any hardware.
    if let (Some(batch), Some(delta)) = (
        find("warm_global_1000n_6000j"),
        find("delta_churn1_1000n_6000j"),
    ) {
        if delta * 5.0 > batch {
            eprintln!(
                "FAIL delta churn1: {delta:.1} µs not 5x faster than batch warm \
                 {batch:.1} µs"
            );
            ok = false;
        }
    }
    // Observability plane, enabled: the fully instrumented warm solve
    // (eight step spans, flow-phase spans, counters) must stay within
    // 1.5x of the obs-off twin measured in this same run, and the
    // instrumented end-to-end cycle within 1.5x of the plain sync
    // cycle. The recorder's hot path is one branch plus two clock reads
    // per span, so 1.5x is generous headroom, not a target.
    if let (Some(off), Some(on)) = (
        find("warm_global_1000n_6000j"),
        find("warm_global_obs_1000n_6000j"),
    ) {
        if on > off * 1.5 {
            eprintln!(
                "FAIL obs overhead: instrumented warm solve {on:.1} µs exceeds \
                 1.5x the obs-off {off:.1} µs"
            );
            ok = false;
        }
    }
    if let (Some(off), Some(on)) = (
        find("cycle_sync_paper_small"),
        find("cycle_sync_obs_paper_small"),
    ) {
        if on > off * 1.5 {
            eprintln!(
                "FAIL obs overhead: instrumented sync cycle {on:.1} µs exceeds \
                 1.5x the obs-off {off:.1} µs"
            );
            ok = false;
        }
    }
    // SLA observability plane: the audit-on cycle (per-app SLO
    // tracking, the attribution pass and the decision audit ring, all
    // riding on observe = "On") must also stay within 1.5x of the
    // obs-off sync cycle in the same run. The SLO pass is two O(apps)
    // sweeps and each audit write is a ring push behind the one-branch
    // recorder guard, so this bound has the same generous headroom as
    // the span-plane one above.
    if let (Some(off), Some(on)) = (
        find("cycle_sync_paper_small"),
        find("cycle_audit_paper_small"),
    ) {
        if on > off * 1.5 {
            eprintln!(
                "FAIL audit overhead: SLO/audit-on sync cycle {on:.1} µs exceeds \
                 1.5x the obs-off {off:.1} µs"
            );
            ok = false;
        }
    }
    // Chaos handling: the zone-storm cycle (12-node three-zone fleet,
    // storm outages and capacity dips toggling nodes in and out of the
    // live set) must stay within 3x of the friendly paper-small sync
    // cycle in the same run. The fault paths are O(outages + dips)
    // scans per event boundary plus the normal solve on a slightly
    // larger fleet, so 3x bounds "chaos is ordinary control work" while
    // leaving room for the bigger problem size.
    if let (Some(friendly), Some(chaos)) = (
        find("cycle_sync_paper_small"),
        find("cycle_chaos_zone_storm"),
    ) {
        if chaos > friendly * 3.0 {
            eprintln!(
                "FAIL chaos overhead: zone-storm cycle {chaos:.1} µs exceeds \
                 3x the friendly sync cycle {friendly:.1} µs"
            );
            ok = false;
        }
    }
    // Routing tier: apportioning the cycle's ~1 M requests across 50
    // apps' instances must stay under 10 % of the warm solve at the
    // same fleet scale — the tier rides in front of every solve, so its
    // overhead must remain a rounding error on the control cycle.
    if let (Some(solve), Some(route)) = (
        find("warm_global_1000n_6000j"),
        find("route_cycle_1000n_50a_1m"),
    ) {
        if route * 10.0 > solve {
            eprintln!(
                "FAIL routing overhead: {route:.1} µs exceeds 10% of the \
                 {solve:.1} µs warm solve"
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let entries = run_benches();
    match (args.first().map(String::as_str), args.get(1)) {
        (Some("--update"), Some(path)) => {
            let baseline = BenchBaseline {
                entries: entries.clone(),
            };
            let json = serde_json::to_string_pretty(&baseline).expect("serializes");
            std::fs::write(path, json + "\n").unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            print_table(&entries, None);
            println!("baseline written to {path}");
        }
        (Some("--check"), Some(path)) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {path}: {e} (run --update first)");
                std::process::exit(1);
            });
            let baseline: BenchBaseline = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse baseline {path}: {e}");
                std::process::exit(1);
            });
            let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.25);
            // The geomean normalizer below can absolve a series that
            // regressed in lockstep with the rest of the run; the hard
            // cap is the backstop — no series may exceed its baseline by
            // this factor raw, however the rest of the run moved.
            let hard_cap: f64 = std::env::var("BENCH_GATE_HARD_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(3.0);
            print_table(&entries, Some(&baseline));
            // Machine-speed normalizer: the geometric mean of now/base
            // across all series. A slower (or faster) runner inflates
            // every series together, moving the geomean with them; a
            // genuine regression moves one series *against* the rest. A
            // series fails only when it exceeds the tolerance both
            // absolutely and after dividing out the geomean, so the gate
            // survives hardware churn without losing its teeth.
            let ratios: Vec<f64> = entries
                .iter()
                .filter_map(|e| {
                    baseline
                        .entries
                        .iter()
                        .find(|b| b.name == e.name && b.micros > 0.0)
                        .map(|b| e.micros / b.micros)
                })
                .collect();
            let geomean = if ratios.is_empty() {
                1.0
            } else {
                (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
            };
            let mut failed = false;
            // A high geomean is either slower hardware or a regression in
            // the shared solver core that inflated every series together
            // — indistinguishable from wall time alone. Warn by default
            // so hardware churn doesn't hard-fail; BENCH_GATE_STRICT=1
            // (for baselines known to come from this machine class) turns
            // it into a failure.
            if geomean > 1.0 + tolerance {
                let strict = std::env::var("BENCH_GATE_STRICT").is_ok_and(|v| v == "1");
                eprintln!(
                    "{} run is uniformly {:.2}x the baseline: slower hardware, or a \
                     regression in the shared solver core (re-record with --update on \
                     this machine to tell them apart)",
                    if strict { "FAIL" } else { "WARN" },
                    geomean
                );
                failed |= strict;
            }
            for e in &entries {
                match baseline.entries.iter().find(|b| b.name == e.name) {
                    None => {
                        eprintln!("FAIL {}: not in baseline (run --update)", e.name);
                        failed = true;
                    }
                    Some(b) if b.micros > 0.0 && e.micros > b.micros * hard_cap => {
                        eprintln!(
                            "FAIL {}: {:.1} µs vs baseline {:.1} µs exceeds the {hard_cap}x \
                             hard cap (BENCH_GATE_HARD_CAP)",
                            e.name, e.micros, b.micros
                        );
                        failed = true;
                    }
                    Some(b)
                        if e.micros > b.micros * (1.0 + tolerance)
                            && e.micros / b.micros > geomean * (1.0 + tolerance) =>
                    {
                        eprintln!(
                            "FAIL {}: {:.1} µs vs baseline {:.1} µs (> +{:.0}% raw and \
                             machine-normalized; run geomean ratio {:.2})",
                            e.name,
                            e.micros,
                            b.micros,
                            tolerance * 100.0,
                            geomean
                        );
                        failed = true;
                    }
                    Some(_) => {}
                }
            }
            if !relative_invariants_hold(&entries) {
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
            println!("bench gate passed (tolerance +{:.0}%)", tolerance * 100.0);
        }
        (None, _) => print_table(&entries, None),
        _ => {
            eprintln!("usage: bench_gate [--update <baseline.json> | --check <baseline.json>]");
            std::process::exit(2);
        }
    }
}
