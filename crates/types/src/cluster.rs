//! Cluster specification: the virtualized data center the controller manages.
//!
//! The paper's testbed is 25 homogeneous nodes, each with four processors;
//! each job's maximum speed is one processor, and node memory admits only
//! three jobs at a time. [`ClusterSpec::homogeneous`] captures that setup in
//! one call; the builder supports heterogeneous clusters for the extension
//! experiments.

use crate::ids::NodeId;
use crate::units::{CpuMhz, MemMb};
use serde::{Deserialize, Serialize};

/// A single physical node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node identifier; equals its index within the owning [`ClusterSpec`].
    pub id: NodeId,
    /// Number of processors (cores). Placement treats CPU power as fluid,
    /// but a single job cannot exceed one processor's speed, so the core
    /// count shapes per-job speed caps.
    pub num_cpus: u32,
    /// Power of one processor.
    pub cpu_per_core: CpuMhz,
    /// Memory capacity available to workload VMs.
    pub mem: MemMb,
}

impl NodeSpec {
    /// Total CPU power of the node (`num_cpus × cpu_per_core`).
    #[inline]
    pub fn cpu_capacity(&self) -> CpuMhz {
        self.cpu_per_core * f64::from(self.num_cpus)
    }
}

/// The whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// Build a homogeneous cluster: `n_nodes` nodes, each with
    /// `cpus_per_node` processors of `cpu_per_core` MHz and `mem` MB.
    ///
    /// The paper's testbed is `homogeneous(25, 4, CpuMhz::new(3000.0),
    /// MemMb::new(4096))`.
    pub fn homogeneous(n_nodes: u32, cpus_per_node: u32, cpu_per_core: CpuMhz, mem: MemMb) -> Self {
        let nodes = (0..n_nodes)
            .map(|i| NodeSpec {
                id: NodeId::new(i),
                num_cpus: cpus_per_node,
                cpu_per_core,
                mem,
            })
            .collect();
        ClusterSpec { nodes }
    }

    /// Start building a (possibly heterogeneous) cluster.
    pub fn builder() -> ClusterSpecBuilder {
        ClusterSpecBuilder { nodes: Vec::new() }
    }

    /// All nodes, ordered by id.
    #[inline]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up one node.
    #[inline]
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(id.index())
    }

    /// Total CPU power across all nodes.
    pub fn total_cpu(&self) -> CpuMhz {
        self.nodes.iter().map(NodeSpec::cpu_capacity).sum()
    }

    /// Total memory across all nodes.
    pub fn total_mem(&self) -> MemMb {
        self.nodes.iter().map(|n| n.mem).sum()
    }

    /// The fastest single processor in the cluster — an upper bound on any
    /// single-threaded job's useful speed.
    pub fn max_core_speed(&self) -> CpuMhz {
        self.nodes
            .iter()
            .map(|n| n.cpu_per_core)
            .fold(CpuMhz::ZERO, CpuMhz::max)
    }

    /// Iterate node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|n| n.id)
    }
}

/// Builder for heterogeneous clusters.
#[derive(Debug, Default)]
pub struct ClusterSpecBuilder {
    nodes: Vec<NodeSpec>,
}

impl ClusterSpecBuilder {
    /// Append one node; its id is assigned sequentially.
    pub fn node(mut self, num_cpus: u32, cpu_per_core: CpuMhz, mem: MemMb) -> Self {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeSpec {
            id,
            num_cpus,
            cpu_per_core,
            mem,
        });
        self
    }

    /// Append `count` identical nodes.
    pub fn nodes(mut self, count: u32, num_cpus: u32, cpu_per_core: CpuMhz, mem: MemMb) -> Self {
        for _ in 0..count {
            self = self.node(num_cpus, cpu_per_core, mem);
        }
        self
    }

    /// Finish building.
    pub fn build(self) -> ClusterSpec {
        ClusterSpec { nodes: self.nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(25, 4, CpuMhz::new(3000.0), MemMb::new(4096))
    }

    #[test]
    fn paper_testbed_capacities() {
        let c = paper_cluster();
        assert_eq!(c.len(), 25);
        assert_eq!(c.total_cpu().as_f64(), 25.0 * 4.0 * 3000.0);
        assert_eq!(c.total_mem(), MemMb::new(25 * 4096));
        assert_eq!(c.max_core_speed(), CpuMhz::new(3000.0));
        let n0 = c.node(NodeId::new(0)).unwrap();
        assert_eq!(n0.cpu_capacity().as_f64(), 12_000.0);
    }

    #[test]
    fn node_ids_are_sequential() {
        let c = paper_cluster();
        let ids: Vec<u32> = c.node_ids().map(NodeId::raw).collect();
        assert_eq!(ids, (0..25).collect::<Vec<_>>());
        assert!(c.node(NodeId::new(25)).is_none());
    }

    #[test]
    fn builder_supports_heterogeneous_nodes() {
        let c = ClusterSpec::builder()
            .nodes(2, 4, CpuMhz::new(3000.0), MemMb::new(4096))
            .node(8, CpuMhz::new(2400.0), MemMb::new(16384))
            .build();
        assert_eq!(c.len(), 3);
        assert_eq!(c.node(NodeId::new(2)).unwrap().num_cpus, 8);
        assert_eq!(c.total_cpu().as_f64(), 2.0 * 12_000.0 + 8.0 * 2400.0);
        assert_eq!(c.max_core_speed(), CpuMhz::new(3000.0));
    }

    #[test]
    fn empty_cluster_is_empty() {
        let c = ClusterSpec::builder().build();
        assert!(c.is_empty());
        assert_eq!(c.total_cpu(), CpuMhz::ZERO);
        assert_eq!(c.max_core_speed(), CpuMhz::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let c = paper_cluster();
        let s = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
