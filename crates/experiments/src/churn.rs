//! E9: churn-budget sensitivity — how tightly can placement changes be
//! capped before SLA outcomes degrade?
//!
//! The paper leans on suspension and migration but every action has a
//! latency cost (the simulator charges them). This study sweeps
//! [`PlacementConfig::max_changes`] on the scaled paper workload and
//! reports the utility/churn trade, quantifying the "bounded churn"
//! design decision called out in DESIGN.md §3.2.

use serde::{Deserialize, Serialize};
use slaq_core::controller::ControllerConfig;
use slaq_core::scenario::PaperParams;
use slaq_core::UtilityController;
use slaq_placement::problem::PlacementConfig;
use slaq_types::{Result, SimTime};

/// Outcome of one churn-budget setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnCell {
    /// Cap on placement changes per cycle (`None` = unbounded).
    pub max_changes: Option<usize>,
    /// Total changes enacted over the run.
    pub total_changes: usize,
    /// Job suspensions/migrations suffered.
    pub disruptions: u32,
    /// Jobs completed.
    pub completed: usize,
    /// Mean measured transactional utility.
    pub mean_trans_utility: f64,
    /// Mean controller-neutral job outlook.
    pub mean_jobs_outlook: f64,
}

/// Run the scaled paper workload at each churn budget.
pub fn churn_sweep(params: &PaperParams, budgets: &[Option<usize>]) -> Result<Vec<ChurnCell>> {
    let horizon = SimTime::from_secs(params.horizon_secs);
    let mut out = Vec::with_capacity(budgets.len());
    for &max_changes in budgets {
        let mut controller = UtilityController::new(ControllerConfig {
            placement: PlacementConfig {
                max_changes,
                evict_priority_gap: 300.0,
                ..PlacementConfig::default()
            },
            ..Default::default()
        });
        let report = params.scenario().run(&mut controller)?;
        out.push(ChurnCell {
            max_changes,
            total_changes: report.total_changes,
            disruptions: report.job_stats.disruptions,
            completed: report.job_stats.completed,
            mean_trans_utility: report
                .metrics
                .mean_over("trans_utility", SimTime::ZERO, horizon)
                .unwrap_or(0.0),
            mean_jobs_outlook: report
                .metrics
                .mean_over("jobs_outlook", SimTime::ZERO, horizon)
                .unwrap_or(0.0),
        });
    }
    Ok(out)
}

/// Text table for the sweep.
pub fn format_churn(cells: &[ChurnCell]) -> String {
    let mut s = String::from(
        "budget/cycle   total-changes   disruptions   done   mean u_T   jobs outlook\n",
    );
    for c in cells {
        s.push_str(&format!(
            "{:<14} {:<15} {:<13} {:<6} {:<10.3} {:.3}\n",
            c.max_changes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            c.total_changes,
            c.disruptions,
            c.completed,
            c.mean_trans_utility,
            c.mean_jobs_outlook,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_budgets_enact_fewer_changes() {
        let params = PaperParams::small();
        let cells = churn_sweep(&params, &[Some(2), Some(8), None]).unwrap();
        assert_eq!(cells.len(), 3);
        assert!(
            cells[0].total_changes <= cells[1].total_changes,
            "2-cap {} vs 8-cap {}",
            cells[0].total_changes,
            cells[1].total_changes
        );
        assert!(cells[1].total_changes <= cells[2].total_changes);
        // Even the tightest budget keeps the system alive.
        assert!(cells[0].completed > 0);
        let table = format_churn(&cells);
        assert!(table.contains("unbounded"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn disruptions_shrink_with_budget() {
        let params = PaperParams::small();
        let cells = churn_sweep(&params, &[Some(3), None]).unwrap();
        assert!(
            cells[0].disruptions <= cells[1].disruptions,
            "capped {} vs unbounded {}",
            cells[0].disruptions,
            cells[1].disruptions
        );
    }
}
