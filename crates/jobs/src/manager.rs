//! The job manager: submissions, lifecycle bookkeeping, progress
//! integration, and the paper's **hypothetical utility** computation.

use crate::job::{Job, JobSpec, JobState};
use crate::utility::JobUtility;
use serde::{Deserialize, Serialize};
use slaq_types::{CpuMhz, JobId, Result, SimDuration, SimTime, SlaqError};
use slaq_utility::{equalize_bisection, EqEntity, EqualizeOptions, EqualizedAllocation};

/// Outcome of a hypothetical-utility evaluation over the active job pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypotheticalOutcome {
    /// The fluid equalized allocation over active jobs.
    pub allocation: EqualizedAllocation,
    /// Mean utility over active jobs — the series Figure 1 plots as
    /// "average hypothetical utility for the long-running workload".
    pub average_utility: f64,
    /// Σ of per-job demands for maximum utility — the Figure 2
    /// "long-running demand" series.
    pub total_demand: CpuMhz,
    /// Number of active jobs considered.
    pub active_jobs: usize,
}

/// Aggregate statistics over all jobs ever submitted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct JobStats {
    /// Jobs ever submitted.
    pub submitted: usize,
    /// Jobs pending (never started).
    pub pending: usize,
    /// Jobs currently running.
    pub running: usize,
    /// Jobs currently suspended.
    pub suspended: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Mean achieved utility over completed jobs (0 when none).
    pub mean_achieved_utility: f64,
    /// Completed jobs that met their goal (completion ≤ goal instant).
    pub goals_met: usize,
    /// Total placement disruptions (suspends + migrations) across jobs.
    pub disruptions: u32,
}

/// Owns every job in the system, indexed densely by [`JobId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobManager {
    jobs: Vec<Job>,
}

impl JobManager {
    /// An empty manager.
    pub fn new() -> Self {
        JobManager { jobs: Vec::new() }
    }

    /// Submit a job; ids are assigned densely in submission order.
    pub fn submit(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId> {
        let id = JobId::new(self.jobs.len() as u32);
        self.jobs.push(Job::new(id, spec, now)?);
        Ok(id)
    }

    /// All jobs ever submitted, by id.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs ever submitted.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Look up a job.
    pub fn job(&self, id: JobId) -> Result<&Job> {
        self.jobs.get(id.index()).ok_or(SlaqError::UnknownJob(id))
    }

    /// Look up a job mutably.
    pub fn job_mut(&mut self, id: JobId) -> Result<&mut Job> {
        self.jobs
            .get_mut(id.index())
            .ok_or(SlaqError::UnknownJob(id))
    }

    /// Ids of jobs still needing CPU (pending, running or suspended), in
    /// submission order.
    pub fn active_ids(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|j| j.is_active())
            .map(|j| j.id)
            .collect()
    }

    /// Ids of currently running jobs.
    pub fn running_ids(&self) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|j| j.is_running())
            .map(|j| j.id)
            .collect()
    }

    /// Utility-curve snapshots for every active job at instant `now` —
    /// the entities the equalizer (and the cross-workload tradeoff in
    /// `slaq-core`) consumes.
    pub fn entities(&self, now: SimTime) -> Vec<(JobId, JobUtility)> {
        self.jobs
            .iter()
            .filter(|j| j.is_active())
            .map(|j| (j.id, JobUtility::of(j, now)))
            .collect()
    }

    /// The paper's hypothetical utility: assume all active jobs can be
    /// placed simultaneously and `budget` MHz of CPU may be divided
    /// arbitrarily finely among them so that expected utility is
    /// equalized. Returns the per-job fluid allocation, the average
    /// utility (Figure 1's long-running series) and the total demand for
    /// maximum utility (Figure 2's long-running demand series).
    pub fn hypothetical(
        &self,
        now: SimTime,
        budget: CpuMhz,
        opts: &EqualizeOptions,
    ) -> HypotheticalOutcome {
        let snapshots = self.entities(now);
        let entities: Vec<EqEntity<'_>> = snapshots
            .iter()
            .map(|(id, ju)| EqEntity::new(*id, ju as &dyn slaq_utility::UtilityOfCpu))
            .collect();
        let allocation = equalize_bisection(&entities, budget, opts);
        let average_utility = if allocation.allocations.is_empty() {
            0.0
        } else {
            allocation
                .allocations
                .iter()
                .map(|a| a.utility)
                .sum::<f64>()
                / allocation.allocations.len() as f64
        };
        let total_demand: CpuMhz = snapshots
            .iter()
            .map(|(_, ju)| slaq_utility::UtilityOfCpu::max_useful_cpu(ju))
            .sum();
        HypotheticalOutcome {
            average_utility,
            total_demand,
            active_jobs: snapshots.len(),
            allocation,
        }
    }

    /// Advance every running job by `dt`, with per-job allocations given
    /// by `alloc_of`. Returns `(id, completion_instant)` for jobs that
    /// finished within the interval, in id order.
    pub fn advance_running(
        &mut self,
        now: SimTime,
        dt: SimDuration,
        mut alloc_of: impl FnMut(JobId) -> CpuMhz,
    ) -> Vec<(JobId, SimTime)> {
        let mut done = Vec::new();
        for job in &mut self.jobs {
            if job.is_running() {
                if let Some(at) = job.advance(alloc_of(job.id), now, dt) {
                    done.push((job.id, at));
                }
            }
        }
        done
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> JobStats {
        let mut s = JobStats {
            submitted: self.jobs.len(),
            ..Default::default()
        };
        let mut util_sum = 0.0;
        for j in &self.jobs {
            s.disruptions += j.disruptions;
            match j.state {
                JobState::Pending => s.pending += 1,
                JobState::Running { .. } => s.running += 1,
                JobState::Suspended { .. } => s.suspended += 1,
                JobState::Completed { at } => {
                    s.completed += 1;
                    util_sum += j.achieved_utility.unwrap_or(0.0);
                    if at <= j.spec.goal.goal {
                        s.goals_met += 1;
                    }
                }
            }
        }
        if s.completed > 0 {
            s.mean_achieved_utility = util_sum / s.completed as f64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use slaq_types::{MemMb, NodeId, Work};
    use slaq_utility::CompletionGoal;

    fn spec(work: f64, submit: f64) -> JobSpec {
        JobSpec {
            name: format!("job@{submit}"),
            total_work: Work::new(work),
            max_speed: CpuMhz::new(3000.0),
            mem: MemMb::new(1280),
            goal: CompletionGoal::relative(
                SimTime::from_secs(submit),
                SimDuration::from_secs(work / 3000.0),
                1.25,
                2.0,
            )
            .unwrap(),
        }
    }

    fn mgr_with(n: usize) -> JobManager {
        let mut m = JobManager::new();
        for i in 0..n {
            m.submit(
                spec(3_000_000.0, i as f64 * 100.0),
                SimTime::from_secs(i as f64 * 100.0),
            )
            .unwrap();
        }
        m
    }

    #[test]
    fn submission_assigns_dense_ids() {
        let m = mgr_with(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.jobs()[2].id, JobId::new(2));
        assert!(m.job(JobId::new(2)).is_ok());
        assert!(matches!(
            m.job(JobId::new(3)),
            Err(SlaqError::UnknownJob(_))
        ));
    }

    #[test]
    fn invalid_spec_is_rejected_at_submit() {
        let mut m = JobManager::new();
        let mut s = spec(100.0, 0.0);
        s.total_work = Work::ZERO;
        assert!(m.submit(s, SimTime::ZERO).is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn active_and_running_sets_track_lifecycle() {
        let mut m = mgr_with(3);
        m.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::ZERO)
            .unwrap();
        m.job_mut(JobId::new(1))
            .unwrap()
            .start(NodeId::new(1), SimTime::ZERO)
            .unwrap();
        m.job_mut(JobId::new(1)).unwrap().suspend().unwrap();
        assert_eq!(m.active_ids().len(), 3);
        assert_eq!(m.running_ids(), vec![JobId::new(0)]);
        let s = m.stats();
        assert_eq!((s.pending, s.running, s.suspended), (1, 1, 1));
        assert_eq!(s.disruptions, 1);
    }

    #[test]
    fn hypothetical_with_ample_budget_is_fully_satisfied() {
        let mut m = JobManager::new();
        for _ in 0..4 {
            m.submit(spec(3_000_000.0, 0.0), SimTime::ZERO).unwrap();
        }
        let h = m.hypothetical(
            SimTime::ZERO,
            CpuMhz::new(300_000.0),
            &EqualizeOptions::default(),
        );
        assert_eq!(h.active_jobs, 4);
        // Every job can run at full speed ⇒ utility 1 each.
        assert!(
            (h.average_utility - 1.0).abs() < 1e-9,
            "{}",
            h.average_utility
        );
        // Fresh jobs each demand their full speed.
        assert!(h.total_demand.approx_eq(CpuMhz::new(4.0 * 3000.0), 1e-6));
    }

    #[test]
    fn stale_jobs_cannot_reach_full_utility() {
        // Jobs submitted at 0/100/200/300 but only considered at t=300:
        // earlier jobs' fastest finishes have slipped past their goals, so
        // even unlimited CPU yields a sub-1 average (0.7167 exactly for
        // this geometry) — the cost of queueing the paper's SLAs price in.
        let m = mgr_with(4);
        let h = m.hypothetical(
            SimTime::from_secs(300.0),
            CpuMhz::new(300_000.0),
            &EqualizeOptions::default(),
        );
        assert!(
            (h.average_utility - (0.4667 + 0.6 + 0.8 + 1.0) / 4.0).abs() < 1e-3,
            "{}",
            h.average_utility
        );
    }

    #[test]
    fn hypothetical_utility_decreases_as_pool_crowds() {
        // Fixed budget, growing job count: average utility must fall —
        // the crowding effect driving Figure 1's long-running decay.
        let budget = CpuMhz::new(12_000.0);
        let now = SimTime::from_secs(0.0);
        let mut prev = f64::INFINITY;
        for n in [2usize, 6, 12, 24] {
            let mut m = JobManager::new();
            for _ in 0..n {
                m.submit(spec(3_000_000.0, 0.0), now).unwrap();
            }
            let h = m.hypothetical(now, budget, &EqualizeOptions::default());
            assert!(
                h.average_utility <= prev + 1e-9,
                "n={n}: {} vs prev {prev}",
                h.average_utility
            );
            prev = h.average_utility;
        }
        assert!(prev < 0.4, "24 jobs on 4 cores should be unhappy: {prev}");
    }

    #[test]
    fn hypothetical_equalizes_mixed_progress() {
        let mut m = mgr_with(2);
        // Job 0 is half done: needs less CPU for the same utility.
        m.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::ZERO)
            .unwrap();
        m.job_mut(JobId::new(0)).unwrap().advance(
            CpuMhz::new(3000.0),
            SimTime::ZERO,
            SimDuration::from_secs(500.0),
        );
        let h = m.hypothetical(
            SimTime::from_secs(500.0),
            CpuMhz::new(3600.0),
            &EqualizeOptions::default(),
        );
        let a0 = h.allocation.cpu_of(JobId::new(0)).unwrap();
        let a1 = h.allocation.cpu_of(JobId::new(1)).unwrap();
        assert!(a0 < a1, "half-done job should need less: {a0} vs {a1}");
        let u0 = h.allocation.allocations[0].utility;
        let u1 = h.allocation.allocations[1].utility;
        assert!((u0 - u1).abs() < 0.01, "utilities equalized: {u0} vs {u1}");
    }

    #[test]
    fn hypothetical_with_no_active_jobs() {
        let m = JobManager::new();
        let h = m.hypothetical(
            SimTime::ZERO,
            CpuMhz::new(1000.0),
            &EqualizeOptions::default(),
        );
        assert_eq!(h.active_jobs, 0);
        assert_eq!(h.average_utility, 0.0);
        assert_eq!(h.total_demand, CpuMhz::ZERO);
    }

    #[test]
    fn advance_running_integrates_and_collects_completions() {
        let mut m = mgr_with(2);
        for i in 0..2 {
            m.job_mut(JobId::new(i))
                .unwrap()
                .start(NodeId::new(i), SimTime::ZERO)
                .unwrap();
        }
        // Job 0 at full speed (completes at 1000 s), job 1 at half.
        let done = m.advance_running(SimTime::ZERO, SimDuration::from_secs(1200.0), |id| {
            if id == JobId::new(0) {
                CpuMhz::new(3000.0)
            } else {
                CpuMhz::new(1500.0)
            }
        });
        assert_eq!(done, vec![(JobId::new(0), SimTime::from_secs(1000.0))]);
        let s = m.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.goals_met, 1);
        assert!((s.mean_achieved_utility - 1.0).abs() < 1e-9);
        assert!((m.job(JobId::new(1)).unwrap().progress() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn stats_counts_goal_misses() {
        let mut m = JobManager::new();
        m.submit(spec(3_000_000.0, 0.0), SimTime::ZERO).unwrap();
        m.job_mut(JobId::new(0))
            .unwrap()
            .start(NodeId::new(0), SimTime::ZERO)
            .unwrap();
        // Crawl at 1000 MHz: completes at 3000 s, past exhausted (2000 s).
        m.job_mut(JobId::new(0)).unwrap().advance(
            CpuMhz::new(1000.0),
            SimTime::ZERO,
            SimDuration::from_secs(5000.0),
        );
        let s = m.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.goals_met, 0);
        assert_eq!(s.mean_achieved_utility, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_hypothetical_min_decreases_with_crowding(
            n1 in 1usize..10,
            extra in 1usize..10,
            budget in 3000.0..60_000.0f64,
        ) {
            // Max–min guarantees are about the *minimum*: adding jobs to a
            // fixed budget can never raise the worst-off job's utility.
            // (The mean is NOT monotone at the utility floor — see the
            // FIFO residual policy note in slaq-utility::equalize.)
            let mk = |n: usize| {
                let mut m = JobManager::new();
                for _ in 0..n {
                    m.submit(spec(3_000_000.0, 0.0), SimTime::ZERO).unwrap();
                }
                m.hypothetical(SimTime::ZERO, CpuMhz::new(budget), &EqualizeOptions::default())
                    .allocation
                    .min_utility()
            };
            prop_assert!(mk(n1 + extra) <= mk(n1) + 1e-6);
        }

        #[test]
        fn prop_hypothetical_budget_helps_the_minimum(
            n in 1usize..12,
            b1 in 1000.0..50_000.0f64,
            extra in 0.0..50_000.0f64,
        ) {
            let mut m = JobManager::new();
            for _ in 0..n {
                m.submit(spec(3_000_000.0, 0.0), SimTime::ZERO).unwrap();
            }
            let u1 = m
                .hypothetical(SimTime::ZERO, CpuMhz::new(b1), &EqualizeOptions::default())
                .allocation
                .min_utility();
            let u2 = m
                .hypothetical(SimTime::ZERO, CpuMhz::new(b1 + extra), &EqualizeOptions::default())
                .allocation
                .min_utility();
            prop_assert!(u2 >= u1 - 1e-6);
        }
    }
}
