//! Candidate-node heap: the solver's `O(log N)` replacement for per-job
//! full-node scans.
//!
//! The placement heuristic's improvement steps (solver steps 2–4, the
//! HPDC'08 algorithm's steps 3–5) repeatedly ask one question: *which
//! node offers this entity the most residual CPU, subject to a memory
//! floor and a few per-query exclusions?* Answering it with a linear
//! `max_by` scan costs `O(N)` per placement — `O(J·N)` per cycle, the
//! solver's asymptotic ceiling once the allocation flow was tamed.
//!
//! [`CandidateHeap`] is an **indexed tournament heap** (an implicit
//! binary segment tree over the problem's dense node indices) keyed by
//! residual CPU. Each leaf mirrors one node's `(cpu_free, mem_free)`
//! trackers; each internal node keeps the component-wise maxima and a
//! shard-membership bitmask of its subtree. Point updates (a placement
//! landing, a capacity clamping) cost `O(log N)`; candidate queries
//! descend from the root, pruning subtrees that cannot contain a
//! feasible winner — `O(log N)` on the happy path, degrading to `O(N)`
//! (with a somewhat larger constant than the plain scan) only when the
//! filters and bounds prune nothing.
//!
//! ### The ordering contract
//!
//! Bit-identical solver outcomes are a hard requirement (the
//! [`reference`](crate::reference) differential oracle and the golden
//! corpus pins enforce it), so the heap reproduces the scan comparators
//! *exactly* rather than approximating them:
//!
//! * [`best_residual`](CandidateHeap::best_residual) — key
//!   `(cpu_free ↓, node id ↑)` under [`fcmp`], the order used when apps
//!   grow instances and when shortchanged jobs look for a migration
//!   target;
//! * [`best_saturating`](CandidateHeap::best_saturating) — key
//!   `(min(cpu_free, demand) ↓, mem_free ↓, node id ↑)`, the order used
//!   when placing a job: residual CPU saturates at the job's demand
//!   (any node that fully feeds the job ties), so free memory and then
//!   the lower node id break ties.
//!
//! Both orders are total (node ids are unique), so the argmax is unique
//! and the descent's pruning/visit order cannot change the winner. Query
//! bounds are the internal maxima with the id component at its best
//! possible value, which makes them admissible: a subtree is pruned only
//! when no leaf inside can beat the best candidate found so far.
//!
//! ### Lifecycle
//!
//! A heap lives inside a long-lived [`Solver`](crate::Solver) (one per
//! sharded lane) and is **warm-reused**: [`assign`](CandidateHeap::assign)
//! refreshes leaf values in place every solve and rebuilds the tree's
//! topology only when the node set itself changed (count or ids), the
//! same rebuild-only-on-topology-change contract as the allocation flow
//! network. [`rebuilds`](CandidateHeap::rebuilds) exposes the counter so
//! tests can pin that a capacity-only change never rebuilds.

use slaq_types::{fcmp, MemMb, NodeId};
use std::cmp::Ordering;

/// Shard labels at or above this bit index share the bitmask's top bit,
/// so shard pruning degrades gracefully (leaf checks stay exact).
const SHARD_MASK_BITS: u32 = 63;

/// A candidate's comparison key. `mem` participates only in saturating
/// queries (residual queries zero it on both sides, so it never decides).
#[derive(Debug, Clone, Copy)]
struct Key {
    cpu: f64,
    mem: u64,
    id: NodeId,
}

impl Key {
    /// `true` when `self` ranks strictly above `other`: higher CPU key,
    /// then more free memory, then the *lower* node id — exactly the
    /// solver's scan comparators.
    #[inline]
    fn beats(self, other: Key) -> bool {
        fcmp(self.cpu, other.cpu)
            .then(self.mem.cmp(&other.mem))
            .then(other.id.cmp(&self.id))
            == Ordering::Greater
    }
}

/// One candidate query's filters and key shape. `demand` switches between
/// the residual key (`None`) and the saturating key (`Some(d)`).
#[derive(Debug, Clone, Copy)]
struct Query {
    demand: Option<f64>,
    min_mem: u64,
    cpu_floor: f64,
    exclude_leaf: usize,
    exclude_shard: u32,
}

/// An indexed tournament heap over the problem's dense node indices,
/// keyed by residual CPU with free-memory maxima and shard bitmasks for
/// subtree pruning. See the [module docs](self) for the ordering
/// contract and lifecycle.
///
/// ```
/// use slaq_placement::CandidateHeap;
/// use slaq_types::{MemMb, NodeId};
///
/// let mut heap = CandidateHeap::new();
/// heap.assign(
///     [
///         (NodeId::new(0), 0, 4000.0, MemMb::new(2048)),
///         (NodeId::new(1), 0, 6000.0, MemMb::new(512)),
///     ]
///     .into_iter(),
/// );
/// // Most residual CPU wins…
/// assert_eq!(heap.peek(), Some(1));
/// // …unless a memory floor disqualifies the front-runner.
/// assert_eq!(heap.best_residual(MemMb::new(1024), 1e-9, None), Some(0));
/// // Point updates re-rank in O(log N).
/// heap.update(0, 7000.0, MemMb::new(2048));
/// assert_eq!(heap.pop(), Some(0));
/// assert_eq!(heap.pop(), Some(1));
/// assert_eq!(heap.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CandidateHeap {
    /// Leaf count (= node count of the assigned problem).
    len: usize,
    /// Per leaf: the node's id (tie-breaking and readout).
    ids: Vec<NodeId>,
    /// Per leaf: shard label (0 when the caller doesn't shard).
    shard: Vec<u32>,
    /// Per leaf: `false` after [`CandidateHeap::remove`].
    alive: Vec<bool>,
    /// Tree of size `2·len`: internal nodes in `1..len` hold subtree
    /// maxima, leaf `i` lives at `len + i`. Removed leaves read `-∞`.
    cpu: Vec<f64>,
    /// Subtree maxima of free memory (raw MB); removed leaves read 0.
    mem: Vec<u64>,
    /// Subtree shard-membership bitmasks (bit `min(shard, 63)`).
    smask: Vec<u64>,
    /// Topology rebuild count (diagnostics; pinned by warm-reuse tests).
    rebuilds: usize,
}

impl CandidateHeap {
    /// An empty heap; [`assign`](CandidateHeap::assign) it before use.
    pub fn new() -> Self {
        CandidateHeap::default()
    }

    /// Number of leaves (nodes) currently assigned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no nodes are assigned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many times [`assign`](CandidateHeap::assign) had to rebuild
    /// the tree topology (node count or id set changed). Capacity-only
    /// refreshes never increment this — the warm-reuse contract.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Load one solve's node state: `(id, shard, cpu_free, mem_free)`
    /// per node, in dense order. Values are refreshed in place; the tree
    /// is reallocated only when the topology (count or ids) changed.
    /// All leaves come back alive.
    pub fn assign<I>(&mut self, nodes: I)
    where
        I: Iterator<Item = (NodeId, u32, f64, MemMb)> + ExactSizeIterator,
    {
        let n = nodes.len();
        if n != self.len {
            self.len = n;
            self.ids.clear();
            self.ids.resize(n, NodeId::new(0));
            self.shard.clear();
            self.shard.resize(n, 0);
            self.alive.clear();
            self.alive.resize(n, true);
            self.cpu.clear();
            self.cpu.resize(2 * n, f64::NEG_INFINITY);
            self.mem.clear();
            self.mem.resize(2 * n, 0);
            self.smask.clear();
            self.smask.resize(2 * n, 0);
            self.rebuilds += 1;
            for (leaf, (id, shard, cpu, mem)) in nodes.enumerate() {
                self.ids[leaf] = id;
                self.shard[leaf] = shard;
                self.write_leaf(leaf, cpu, mem);
            }
        } else {
            let mut topo_changed = false;
            for (leaf, (id, shard, cpu, mem)) in nodes.enumerate() {
                topo_changed |= self.ids[leaf] != id;
                self.ids[leaf] = id;
                self.shard[leaf] = shard;
                self.alive[leaf] = true;
                self.write_leaf(leaf, cpu, mem);
            }
            if topo_changed {
                self.rebuilds += 1;
            }
        }
        for t in (1..self.len).rev() {
            self.pull(t);
        }
    }

    /// Update one leaf's trackers after a placement decision. `O(log N)`.
    #[inline]
    pub fn update(&mut self, leaf: usize, cpu_free: f64, mem_free: MemMb) {
        debug_assert!(self.alive[leaf], "update of a removed leaf");
        self.write_leaf(leaf, cpu_free, mem_free);
        self.bubble(leaf);
    }

    /// Take a leaf out of candidacy (lazy deletion: the slot stays, the
    /// subtree maxima stop seeing it). `O(log N)`.
    #[inline]
    pub fn remove(&mut self, leaf: usize) {
        self.alive[leaf] = false;
        let t = self.len + leaf;
        self.cpu[t] = f64::NEG_INFINITY;
        self.mem[t] = 0;
        self.smask[t] = 0;
        self.bubble(leaf);
    }

    /// Put a removed leaf back with fresh trackers. `O(log N)`.
    #[inline]
    pub fn restore(&mut self, leaf: usize, cpu_free: f64, mem_free: MemMb) {
        debug_assert!(!self.alive[leaf], "restore of a live leaf");
        self.alive[leaf] = true;
        self.write_leaf(leaf, cpu_free, mem_free);
        self.bubble(leaf);
    }

    /// The best candidate under the **residual** key
    /// `(cpu_free ↓, id ↑)` among alive leaves with
    /// `mem_free ≥ min_mem` and `cpu_free > cpu_floor`, skipping
    /// `exclude_leaf`. Pass `f64::NEG_INFINITY` as the floor to admit
    /// CPU-exhausted nodes.
    pub fn best_residual(
        &self,
        min_mem: MemMb,
        cpu_floor: f64,
        exclude_leaf: Option<usize>,
    ) -> Option<usize> {
        self.query(Query {
            demand: None,
            min_mem: min_mem.as_u64(),
            cpu_floor,
            exclude_leaf: exclude_leaf.unwrap_or(usize::MAX),
            exclude_shard: u32::MAX,
        })
    }

    /// The best candidate under the **saturating** key
    /// `(min(cpu_free, demand) ↓, mem_free ↓, id ↑)` among alive leaves
    /// with `mem_free ≥ min_mem` and `cpu_free > cpu_floor`, skipping
    /// leaves labeled `exclude_shard`. This is the job-placement order:
    /// nodes that fully feed the job tie on CPU, so free memory decides.
    pub fn best_saturating(
        &self,
        demand: f64,
        min_mem: MemMb,
        cpu_floor: f64,
        exclude_shard: Option<u32>,
    ) -> Option<usize> {
        self.query(Query {
            demand: Some(demand),
            min_mem: min_mem.as_u64(),
            cpu_floor,
            exclude_leaf: usize::MAX,
            exclude_shard: exclude_shard.unwrap_or(u32::MAX),
        })
    }

    /// The unfiltered residual-order front-runner, without removing it.
    pub fn peek(&self) -> Option<usize> {
        self.best_residual(MemMb::new(0), f64::NEG_INFINITY, None)
    }

    /// Pop the residual-order front-runner: the alive leaf with the most
    /// free CPU (ties: lower node id), removed from candidacy.
    pub fn pop(&mut self) -> Option<usize> {
        let leaf = self.peek()?;
        self.remove(leaf);
        Some(leaf)
    }

    // ----------------------------------------------------------------
    // Internals.
    // ----------------------------------------------------------------

    /// Write a leaf's tree slot (no bubbling).
    #[inline]
    fn write_leaf(&mut self, leaf: usize, cpu: f64, mem: MemMb) {
        let t = self.len + leaf;
        self.cpu[t] = cpu;
        self.mem[t] = mem.as_u64();
        self.smask[t] = 1u64 << self.shard[leaf].min(SHARD_MASK_BITS);
    }

    /// Recompute one internal node from its children.
    #[inline]
    fn pull(&mut self, t: usize) {
        let (l, r) = (2 * t, 2 * t + 1);
        self.cpu[t] = self.cpu[l].max(self.cpu[r]);
        self.mem[t] = self.mem[l].max(self.mem[r]);
        self.smask[t] = self.smask[l] | self.smask[r];
    }

    /// Recompute the ancestors of a leaf.
    #[inline]
    fn bubble(&mut self, leaf: usize) {
        let mut t = (self.len + leaf) / 2;
        while t >= 1 {
            self.pull(t);
            t /= 2;
        }
    }

    /// Admissible upper bound on any leaf key inside subtree `t`: the
    /// component-wise maxima with the id at its best possible value.
    #[inline]
    fn bound(&self, t: usize, q: &Query) -> Key {
        Key {
            cpu: q.demand.map_or(self.cpu[t], |d| self.cpu[t].min(d)),
            mem: if q.demand.is_some() { self.mem[t] } else { 0 },
            id: NodeId::new(0),
        }
    }

    /// Best-first descent from the root with subtree pruning.
    fn query(&self, q: Query) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<(Key, usize)> = None;
        self.descend(1, &q, &mut best);
        best.map(|(_, leaf)| leaf)
    }

    fn descend(&self, t: usize, q: &Query, best: &mut Option<(Key, usize)>) {
        // Feasibility pruning: at a leaf these comparisons *are* the
        // exact filters; at an internal node they are necessary
        // conditions on the maxima.
        if self.mem[t] < q.min_mem || self.cpu[t] <= q.cpu_floor {
            return;
        }
        if q.exclude_shard < SHARD_MASK_BITS && self.smask[t] & !(1u64 << q.exclude_shard) == 0 {
            return;
        }
        // Bound pruning: keys are unique (distinct ids), so a subtree
        // whose admissible bound does not beat the incumbent holds no
        // better leaf.
        if let Some((incumbent, _)) = *best {
            if !self.bound(t, q).beats(incumbent) {
                return;
            }
        }
        if t >= self.len {
            let leaf = t - self.len;
            if !self.alive[leaf] || leaf == q.exclude_leaf || self.shard[leaf] == q.exclude_shard {
                return;
            }
            let key = Key {
                cpu: q.demand.map_or(self.cpu[t], |d| self.cpu[t].min(d)),
                mem: if q.demand.is_some() { self.mem[t] } else { 0 },
                id: self.ids[leaf],
            };
            if best.is_none_or(|(incumbent, _)| key.beats(incumbent)) {
                *best = Some((key, leaf));
            }
            return;
        }
        // Visit the more promising child first so the second descent
        // prunes on its sibling's result.
        let (l, r) = (2 * t, 2 * t + 1);
        if self.bound(r, q).beats(self.bound(l, q)) {
            self.descend(r, q, best);
            self.descend(l, q, best);
        } else {
            self.descend(l, q, best);
            self.descend(r, q, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference scan mirroring `best_residual`'s contract.
    fn scan_residual(
        nodes: &[(NodeId, u32, f64, u64, bool)],
        min_mem: u64,
        cpu_floor: f64,
        exclude_leaf: Option<usize>,
    ) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|&(i, &(_, _, cpu, mem, alive))| {
                alive && mem >= min_mem && cpu > cpu_floor && Some(i) != exclude_leaf
            })
            .max_by(|(_, a), (_, b)| fcmp(a.2, b.2).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }

    /// Reference scan mirroring `best_saturating`'s contract.
    fn scan_saturating(
        nodes: &[(NodeId, u32, f64, u64, bool)],
        demand: f64,
        min_mem: u64,
        cpu_floor: f64,
        exclude_shard: Option<u32>,
    ) -> Option<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|&(_, &(_, shard, cpu, mem, alive))| {
                alive && mem >= min_mem && cpu > cpu_floor && Some(shard) != exclude_shard
            })
            .max_by(|(_, a), (_, b)| {
                fcmp(a.2.min(demand), b.2.min(demand))
                    .then(a.3.cmp(&b.3))
                    .then(b.0.cmp(&a.0))
            })
            .map(|(i, _)| i)
    }

    fn heap_of(nodes: &[(NodeId, u32, f64, u64, bool)]) -> CandidateHeap {
        let mut heap = CandidateHeap::new();
        heap.assign(
            nodes
                .iter()
                .map(|&(id, shard, cpu, mem, _)| (id, shard, cpu, MemMb::new(mem))),
        );
        for (leaf, &(_, _, _, _, alive)) in nodes.iter().enumerate() {
            if !alive {
                heap.remove(leaf);
            }
        }
        heap
    }

    #[test]
    fn empty_heap_answers_nothing() {
        let mut heap = CandidateHeap::new();
        assert_eq!(heap.peek(), None);
        assert_eq!(heap.pop(), None);
        assert_eq!(heap.best_residual(MemMb::new(0), 0.0, None), None);
        heap.assign(std::iter::empty());
        assert_eq!(heap.best_saturating(100.0, MemMb::new(0), 0.0, None), None);
    }

    #[test]
    fn residual_order_prefers_cpu_then_lower_id() {
        let nodes = [
            (NodeId::new(3), 0, 500.0, 1024, true),
            (NodeId::new(1), 0, 900.0, 1024, true),
            (NodeId::new(2), 0, 900.0, 4096, true),
        ];
        let heap = heap_of(&nodes);
        // 900 ties between ids 1 and 2: the lower id wins regardless of
        // memory (the residual key has no memory component).
        assert_eq!(heap.best_residual(MemMb::new(0), 1e-9, None), Some(1));
        // Memory floor knocks out both 900s? No — only the 1024 ones if
        // the floor exceeds them.
        assert_eq!(heap.best_residual(MemMb::new(2048), 1e-9, None), Some(2));
        // Excluding the winner falls back to the tie partner.
        assert_eq!(heap.best_residual(MemMb::new(0), 1e-9, Some(1)), Some(2));
        // A floor above every cpu yields nothing.
        assert_eq!(heap.best_residual(MemMb::new(0), 901.0, None), None);
    }

    #[test]
    fn saturating_order_breaks_cpu_ties_by_memory() {
        let nodes = [
            (NodeId::new(0), 0, 3000.0, 256, true),
            (NodeId::new(1), 0, 2000.0, 4096, true),
            (NodeId::new(2), 0, 1500.0, 8192, true),
        ];
        let heap = heap_of(&nodes);
        // demand 1000: every node saturates, the most free memory wins.
        assert_eq!(
            heap.best_saturating(1000.0, MemMb::new(0), 1e-9, None),
            Some(2)
        );
        // demand 2500: nodes 0 (sat) vs 1,2 (short) — node 0 wins on CPU.
        assert_eq!(
            heap.best_saturating(2500.0, MemMb::new(0), 1e-9, None),
            Some(0)
        );
        // demand 2500 with a 1 GB memory floor: node 0 is filtered, node
        // 1 offers more CPU than node 2.
        assert_eq!(
            heap.best_saturating(2500.0, MemMb::new(1024), 1e-9, None),
            Some(1)
        );
    }

    #[test]
    fn shard_exclusion_skips_home_nodes() {
        let nodes = [
            (NodeId::new(0), 7, 3000.0, 4096, true),
            (NodeId::new(1), 7, 2900.0, 4096, true),
            (NodeId::new(2), 1, 100.0, 4096, true),
        ];
        let heap = heap_of(&nodes);
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(7)),
            Some(2)
        );
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(1)),
            Some(0)
        );
        // Excluding a label nobody wears changes nothing.
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(42)),
            Some(0)
        );
    }

    #[test]
    fn shard_labels_beyond_the_mask_stay_exact() {
        // Labels ≥ 63 share bitmask bit 63: pruning must degrade to leaf
        // checks, never skip a foreign-shard candidate or admit a home
        // one.
        let nodes = [
            (NodeId::new(0), 64, 3000.0, 4096, true),
            (NodeId::new(1), 90, 2900.0, 4096, true),
            (NodeId::new(2), 64, 2800.0, 4096, true),
        ];
        let heap = heap_of(&nodes);
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(64)),
            Some(1)
        );
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(90)),
            Some(0)
        );
        assert_eq!(
            heap.best_saturating(500.0, MemMb::new(0), 1e-9, Some(63)),
            Some(0)
        );
    }

    #[test]
    fn capacity_only_reassign_never_rebuilds() {
        let ids = [NodeId::new(4), NodeId::new(0), NodeId::new(9)];
        let mut heap = CandidateHeap::new();
        heap.assign(ids.iter().map(|&id| (id, 0, 1000.0, MemMb::new(4096))));
        assert_eq!(heap.rebuilds(), 1, "first assign builds");
        // Same topology, different capacities — and leaves removed in
        // between: refresh, no rebuild.
        heap.remove(1);
        heap.assign(ids.iter().map(|&id| (id, 0, 2500.0, MemMb::new(512))));
        assert_eq!(heap.rebuilds(), 1, "capacity-only change must not rebuild");
        // Equal CPUs everywhere: the lowest node id (0, on leaf 1) wins —
        // which also proves the removed leaf came back alive.
        assert_eq!(heap.peek(), Some(1), "removed leaf came back alive");
        // Changed id set: rebuild.
        heap.assign(
            [NodeId::new(4), NodeId::new(1), NodeId::new(9)]
                .iter()
                .map(|&id| (id, 0, 1000.0, MemMb::new(4096))),
        );
        assert_eq!(heap.rebuilds(), 2, "id change rebuilds");
        // Changed count: rebuild.
        heap.assign(
            [NodeId::new(4)]
                .iter()
                .map(|&id| (id, 0, 1.0, MemMb::new(1))),
        );
        assert_eq!(heap.rebuilds(), 3, "count change rebuilds");
    }

    #[test]
    fn update_remove_restore_roundtrip() {
        let nodes = [
            (NodeId::new(0), 0, 100.0, 1000, true),
            (NodeId::new(1), 0, 200.0, 1000, true),
        ];
        let mut heap = heap_of(&nodes);
        assert_eq!(heap.peek(), Some(1));
        heap.update(0, 300.0, MemMb::new(500));
        assert_eq!(heap.peek(), Some(0));
        heap.remove(0);
        assert_eq!(heap.peek(), Some(1));
        heap.restore(0, 300.0, MemMb::new(500));
        assert_eq!(heap.peek(), Some(0));
        assert_eq!(heap.pop(), Some(0));
        assert_eq!(heap.pop(), Some(1));
        assert_eq!(heap.pop(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite invariant: pop order always equals a sorted full
        /// scan, under random interleavings of update / remove / pop.
        #[test]
        fn prop_pop_order_matches_sorted_scan_under_interleaving(
            cpus in proptest::collection::vec(0.0..10_000.0f64, 1..24),
            ops in proptest::collection::vec((0usize..24, 0.0..10_000.0f64, 0u8..3), 0..32),
        ) {
            let mut nodes: Vec<(NodeId, u32, f64, u64, bool)> = cpus
                .iter()
                .enumerate()
                // A few deliberate exact CPU ties (quantized values) so the
                // id tie-break is exercised, plus varying memory.
                .map(|(i, &c)| {
                    let cpu = (c / 500.0).floor() * 500.0;
                    (NodeId::new(i as u32), 0, cpu, 256 * (i as u64 % 5), true)
                })
                .collect();
            let mut heap = heap_of(&nodes);
            for (slot, cpu, op) in ops {
                let leaf = slot % nodes.len();
                match op {
                    0 => {
                        // update (only live leaves).
                        if nodes[leaf].4 {
                            nodes[leaf].2 = cpu;
                            heap.update(leaf, cpu, MemMb::new(nodes[leaf].3));
                        }
                    }
                    1 => {
                        // remove (idempotence not required by the API).
                        if nodes[leaf].4 {
                            nodes[leaf].4 = false;
                            heap.remove(leaf);
                        }
                    }
                    _ => {
                        // pop must match the scan's front-runner.
                        let expect = scan_residual(&nodes, 0, f64::NEG_INFINITY, None);
                        prop_assert_eq!(heap.pop(), expect);
                        if let Some(leaf) = expect {
                            nodes[leaf].4 = false;
                        }
                    }
                }
            }
            // Drain: the remaining pop sequence is exactly the scan order.
            while let Some(leaf) = heap.pop() {
                let expect = scan_residual(&nodes, 0, f64::NEG_INFINITY, None);
                prop_assert_eq!(Some(leaf), expect);
                nodes[leaf].4 = false;
            }
            prop_assert!(nodes.iter().all(|n| !n.4), "heap drained early");
        }

        /// Filtered queries agree with the scans they replace, across
        /// random states, floors, demands, and exclusions.
        #[test]
        fn prop_filtered_queries_match_scans(
            raw in proptest::collection::vec(
                (0.0..8000.0f64, 0u64..6000, 0u32..5, 0u8..2),
                1..28,
            ),
            demand in 1.0..4000.0f64,
            min_mem in 0u64..5000,
            floor_mhz in proptest::option::of(0.0..6000.0f64),
            exclude_leaf in proptest::option::of(0usize..28),
            exclude_shard in proptest::option::of(0u32..5),
        ) {
            let nodes: Vec<(NodeId, u32, f64, u64, bool)> = raw
                .iter()
                .enumerate()
                .map(|(i, &(c, m, s, alive))| {
                    // Quantize CPU so exact ties hit the tie-breakers.
                    (NodeId::new(i as u32), s, (c / 250.0).floor() * 250.0, m, alive == 1)
                })
                .collect();
            let heap = heap_of(&nodes);
            let floor = floor_mhz.unwrap_or(f64::NEG_INFINITY);
            let excl = exclude_leaf.filter(|&e| e < nodes.len());
            prop_assert_eq!(
                heap.best_residual(MemMb::new(min_mem), floor, excl),
                scan_residual(&nodes, min_mem, floor, excl)
            );
            prop_assert_eq!(
                heap.best_saturating(demand, MemMb::new(min_mem), floor, exclude_shard),
                scan_saturating(&nodes, demand, min_mem, floor, exclude_shard)
            );
        }
    }
}
