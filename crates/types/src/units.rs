//! Capacity units: CPU power in MHz and memory in MB.
//!
//! CPU power is modelled as a *fluid* quantity ([`CpuMhz`] wraps `f64`):
//! the paper's hypothetical-utility construction explicitly assumes that
//! "the available CPU power may be arbitrarily finely allocated among the
//! jobs", and hypervisor CPU shares are fractional in practice. Memory is
//! integral ([`MemMb`] wraps `u64`): an instance either fits or it does not,
//! which is exactly the constraint that limits the paper's testbed to three
//! jobs per node.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Total-order comparison for `f64` values that are known to be non-NaN.
///
/// All fluid quantities in this workspace are derived from finite inputs by
/// finite arithmetic; a NaN indicates a logic error, so we surface it loudly
/// in debug builds and fall back to `Ordering::Equal` in release builds
/// (keeping sorts total rather than panicking mid-experiment).
#[inline]
pub fn fcmp(a: f64, b: f64) -> Ordering {
    debug_assert!(!a.is_nan() && !b.is_nan(), "NaN reached an ordered context");
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

/// CPU power in megahertz.
///
/// A node with four 3000 MHz processors has `CpuMhz(12_000.0)` of power; a
/// job whose maximum speed is a single processor demands at most
/// `CpuMhz(3000.0)`. Fractional values represent hypervisor CPU shares.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CpuMhz(pub f64);

impl CpuMhz {
    /// Zero CPU power.
    pub const ZERO: CpuMhz = CpuMhz(0.0);

    /// Construct from a raw MHz value.
    #[inline]
    pub fn new(mhz: f64) -> Self {
        debug_assert!(mhz.is_finite(), "CpuMhz must be finite, got {mhz}");
        CpuMhz(mhz)
    }

    /// Raw MHz value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` if this is (numerically) zero or negative-epsilon noise.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0.abs() < 1e-9
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: CpuMhz) -> CpuMhz {
        CpuMhz(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: CpuMhz) -> CpuMhz {
        CpuMhz(self.0.max(other.0))
    }

    /// Clamp into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: CpuMhz, hi: CpuMhz) -> CpuMhz {
        CpuMhz(self.0.clamp(lo.0, hi.0))
    }

    /// Clamp tiny negative rounding noise up to exactly zero.
    #[inline]
    pub fn max_zero(self) -> CpuMhz {
        if self.0 < 0.0 {
            CpuMhz(0.0)
        } else {
            self
        }
    }

    /// Saturating subtraction: never goes below zero.
    #[inline]
    pub fn saturating_sub(self, other: CpuMhz) -> CpuMhz {
        CpuMhz((self.0 - other.0).max(0.0))
    }

    /// Ratio of two powers (dimensionless). Returns 0 when `other` is zero.
    #[inline]
    pub fn ratio(self, other: CpuMhz) -> f64 {
        if other.is_zero() {
            0.0
        } else {
            self.0 / other.0
        }
    }

    /// `true` if `self` is within `tol` MHz of `other`.
    #[inline]
    pub fn approx_eq(self, other: CpuMhz, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }

    /// Total-order comparison (see [`fcmp`]).
    #[inline]
    pub fn total_cmp(self, other: CpuMhz) -> Ordering {
        fcmp(self.0, other.0)
    }
}

impl fmt::Display for CpuMhz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.0)
    }
}

impl Add for CpuMhz {
    type Output = CpuMhz;
    #[inline]
    fn add(self, rhs: CpuMhz) -> CpuMhz {
        CpuMhz(self.0 + rhs.0)
    }
}

impl AddAssign for CpuMhz {
    #[inline]
    fn add_assign(&mut self, rhs: CpuMhz) {
        self.0 += rhs.0;
    }
}

impl Sub for CpuMhz {
    type Output = CpuMhz;
    #[inline]
    fn sub(self, rhs: CpuMhz) -> CpuMhz {
        CpuMhz(self.0 - rhs.0)
    }
}

impl SubAssign for CpuMhz {
    #[inline]
    fn sub_assign(&mut self, rhs: CpuMhz) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for CpuMhz {
    type Output = CpuMhz;
    #[inline]
    fn mul(self, rhs: f64) -> CpuMhz {
        CpuMhz(self.0 * rhs)
    }
}

impl Div<f64> for CpuMhz {
    type Output = CpuMhz;
    #[inline]
    fn div(self, rhs: f64) -> CpuMhz {
        CpuMhz(self.0 / rhs)
    }
}

impl Div for CpuMhz {
    type Output = f64;
    #[inline]
    fn div(self, rhs: CpuMhz) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for CpuMhz {
    type Output = CpuMhz;
    #[inline]
    fn neg(self) -> CpuMhz {
        CpuMhz(-self.0)
    }
}

impl Sum for CpuMhz {
    fn sum<I: Iterator<Item = CpuMhz>>(iter: I) -> CpuMhz {
        CpuMhz(iter.map(|c| c.0).sum())
    }
}

impl<'a> Sum<&'a CpuMhz> for CpuMhz {
    fn sum<I: Iterator<Item = &'a CpuMhz>>(iter: I) -> CpuMhz {
        CpuMhz(iter.map(|c| c.0).sum())
    }
}

/// An amount of computational work, in MHz·seconds (megacycles).
///
/// `Work = CpuMhz × SimDuration`: a job with `Work(43_200_000.0)` needs
/// 4 hours on a 3000 MHz processor. The unit also expresses per-request
/// service demands in the transactional queueing model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Work(pub f64);

impl Work {
    /// No work.
    pub const ZERO: Work = Work(0.0);

    /// Construct from raw MHz·seconds.
    #[inline]
    pub fn new(mhz_secs: f64) -> Self {
        debug_assert!(mhz_secs.is_finite(), "Work must be finite, got {mhz_secs}");
        Work(mhz_secs)
    }

    /// Work done by `power` sustained for `secs` seconds.
    #[inline]
    pub fn from_power_secs(power: CpuMhz, secs: f64) -> Self {
        Work(power.as_f64() * secs)
    }

    /// Raw MHz·seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` if the remaining work is (numerically) zero or less.
    #[inline]
    pub fn is_done(self) -> bool {
        self.0 <= 1e-9
    }

    /// Seconds needed to finish this work at sustained `power`
    /// (`f64::INFINITY` when `power` is zero).
    #[inline]
    pub fn secs_at(self, power: CpuMhz) -> f64 {
        if power.is_zero() {
            f64::INFINITY
        } else {
            (self.0 / power.as_f64()).max(0.0)
        }
    }

    /// Power needed to finish this work in `secs` seconds
    /// (`f64::INFINITY` when `secs` is zero and work remains).
    #[inline]
    pub fn power_for_secs(self, secs: f64) -> CpuMhz {
        if self.is_done() {
            CpuMhz::ZERO
        } else if secs <= 0.0 {
            CpuMhz(f64::INFINITY)
        } else {
            CpuMhz(self.0 / secs)
        }
    }

    /// Saturating subtraction: never goes below zero.
    #[inline]
    pub fn saturating_sub(self, other: Work) -> Work {
        Work((self.0 - other.0).max(0.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Work) -> Work {
        Work(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Work) -> Work {
        Work(self.0.max(other.0))
    }
}

impl fmt::Display for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} MHz·s", self.0)
    }
}

impl Add for Work {
    type Output = Work;
    #[inline]
    fn add(self, rhs: Work) -> Work {
        Work(self.0 + rhs.0)
    }
}

impl AddAssign for Work {
    #[inline]
    fn add_assign(&mut self, rhs: Work) {
        self.0 += rhs.0;
    }
}

impl Sub for Work {
    type Output = Work;
    #[inline]
    fn sub(self, rhs: Work) -> Work {
        Work(self.0 - rhs.0)
    }
}

impl Mul<f64> for Work {
    type Output = Work;
    #[inline]
    fn mul(self, rhs: f64) -> Work {
        Work(self.0 * rhs)
    }
}

impl Div<f64> for Work {
    type Output = Work;
    #[inline]
    fn div(self, rhs: f64) -> Work {
        Work(self.0 / rhs)
    }
}

impl Div for Work {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Work) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Work {
    fn sum<I: Iterator<Item = Work>>(iter: I) -> Work {
        Work(iter.map(|w| w.0).sum())
    }
}

/// Memory in megabytes (integral).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MemMb(pub u64);

impl MemMb {
    /// Zero memory.
    pub const ZERO: MemMb = MemMb(0);

    /// Construct from a raw MB value.
    #[inline]
    pub fn new(mb: u64) -> Self {
        MemMb(mb)
    }

    /// Raw MB value.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: MemMb) -> MemMb {
        MemMb(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: MemMb) -> Option<MemMb> {
        self.0.checked_sub(other.0).map(MemMb)
    }

    /// `true` if a footprint of `other` fits within `self`.
    #[inline]
    pub fn fits(self, other: MemMb) -> bool {
        other.0 <= self.0
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: MemMb) -> MemMb {
        MemMb(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: MemMb) -> MemMb {
        MemMb(self.0.max(other.0))
    }
}

impl fmt::Display for MemMb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

impl Add for MemMb {
    type Output = MemMb;
    #[inline]
    fn add(self, rhs: MemMb) -> MemMb {
        MemMb(self.0 + rhs.0)
    }
}

impl AddAssign for MemMb {
    #[inline]
    fn add_assign(&mut self, rhs: MemMb) {
        self.0 += rhs.0;
    }
}

impl Sub for MemMb {
    type Output = MemMb;
    #[inline]
    fn sub(self, rhs: MemMb) -> MemMb {
        MemMb(self.0 - rhs.0)
    }
}

impl SubAssign for MemMb {
    #[inline]
    fn sub_assign(&mut self, rhs: MemMb) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for MemMb {
    type Output = MemMb;
    #[inline]
    fn mul(self, rhs: u64) -> MemMb {
        MemMb(self.0 * rhs)
    }
}

impl Sum for MemMb {
    fn sum<I: Iterator<Item = MemMb>>(iter: I) -> MemMb {
        MemMb(iter.map(|m| m.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cpu_arithmetic_roundtrips() {
        let a = CpuMhz::new(3000.0);
        let b = CpuMhz::new(1250.5);
        assert_eq!((a + b - b).as_f64(), 3000.0);
        assert_eq!((a * 2.0).as_f64(), 6000.0);
        assert_eq!((a / 2.0).as_f64(), 1500.0);
        assert!((a / b - 3000.0 / 1250.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_saturating_sub_floors_at_zero() {
        let a = CpuMhz::new(100.0);
        let b = CpuMhz::new(250.0);
        assert_eq!(a.saturating_sub(b), CpuMhz::ZERO);
        assert_eq!(b.saturating_sub(a).as_f64(), 150.0);
    }

    #[test]
    fn cpu_zero_detection_tolerates_noise() {
        assert!(CpuMhz::new(0.0).is_zero());
        assert!(CpuMhz::new(1e-12).is_zero());
        assert!(CpuMhz::new(-1e-12).is_zero());
        assert!(!CpuMhz::new(0.001).is_zero());
    }

    #[test]
    fn cpu_max_zero_clamps_negative_noise() {
        assert_eq!(CpuMhz::new(-1e-9).max_zero(), CpuMhz::ZERO);
        assert_eq!(CpuMhz::new(5.0).max_zero().as_f64(), 5.0);
    }

    #[test]
    fn cpu_ratio_of_zero_denominator_is_zero() {
        assert_eq!(CpuMhz::new(5.0).ratio(CpuMhz::ZERO), 0.0);
        assert_eq!(CpuMhz::new(5.0).ratio(CpuMhz::new(10.0)), 0.5);
    }

    #[test]
    fn cpu_sum_over_iterator() {
        let parts = [CpuMhz::new(1.0), CpuMhz::new(2.5), CpuMhz::new(3.5)];
        let total: CpuMhz = parts.iter().sum();
        assert_eq!(total.as_f64(), 7.0);
        let total2: CpuMhz = parts.into_iter().sum();
        assert_eq!(total2.as_f64(), 7.0);
    }

    #[test]
    fn cpu_display_formats_with_unit() {
        assert_eq!(CpuMhz::new(1234.56).to_string(), "1234.6 MHz");
    }

    #[test]
    fn mem_fits_is_inclusive() {
        assert!(MemMb::new(4096).fits(MemMb::new(4096)));
        assert!(MemMb::new(4096).fits(MemMb::new(1024)));
        assert!(!MemMb::new(1024).fits(MemMb::new(4096)));
    }

    #[test]
    fn mem_checked_sub_detects_underflow() {
        assert_eq!(
            MemMb::new(10).checked_sub(MemMb::new(4)),
            Some(MemMb::new(6))
        );
        assert_eq!(MemMb::new(4).checked_sub(MemMb::new(10)), None);
        assert_eq!(MemMb::new(4).saturating_sub(MemMb::new(10)), MemMb::ZERO);
    }

    #[test]
    fn mem_display_formats_with_unit() {
        assert_eq!(MemMb::new(2048).to_string(), "2048 MB");
    }

    #[test]
    fn work_power_time_identities() {
        let w = Work::from_power_secs(CpuMhz::new(3000.0), 14_400.0);
        assert_eq!(w.as_f64(), 43_200_000.0);
        assert_eq!(w.secs_at(CpuMhz::new(3000.0)), 14_400.0);
        assert_eq!(w.secs_at(CpuMhz::new(6000.0)), 7_200.0);
        assert_eq!(w.secs_at(CpuMhz::ZERO), f64::INFINITY);
        assert_eq!(w.power_for_secs(14_400.0), CpuMhz::new(3000.0));
    }

    #[test]
    fn work_done_detection() {
        assert!(Work::ZERO.is_done());
        assert!(Work::new(1e-12).is_done());
        assert!(!Work::new(1.0).is_done());
        assert!(Work::new(5.0).saturating_sub(Work::new(10.0)).is_done());
        assert_eq!(Work::ZERO.power_for_secs(0.0), CpuMhz::ZERO);
        assert_eq!(Work::new(10.0).power_for_secs(0.0).as_f64(), f64::INFINITY);
    }

    #[test]
    fn work_display_and_arithmetic() {
        assert_eq!(Work::new(1234.0).to_string(), "1234 MHz·s");
        assert_eq!((Work::new(10.0) + Work::new(5.0)).as_f64(), 15.0);
        assert_eq!((Work::new(10.0) * 0.5).as_f64(), 5.0);
        assert_eq!(Work::new(10.0) / Work::new(4.0), 2.5);
        let total: Work = [Work::new(1.0), Work::new(2.0)].into_iter().sum();
        assert_eq!(total.as_f64(), 3.0);
    }

    #[test]
    fn fcmp_is_a_total_order_on_finite_values() {
        assert_eq!(fcmp(1.0, 2.0), Ordering::Less);
        assert_eq!(fcmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(fcmp(1.0, 1.0), Ordering::Equal);
    }

    #[test]
    fn serde_transparent_roundtrip() {
        let c = CpuMhz::new(123.25);
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(s, "123.25");
        let back: CpuMhz = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
        let m = MemMb::new(512);
        let s = serde_json::to_string(&m).unwrap();
        assert_eq!(s, "512");
        let back: MemMb = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    proptest! {
        #[test]
        fn prop_cpu_add_commutes(a in 0.0..1e7f64, b in 0.0..1e7f64) {
            let (x, y) = (CpuMhz::new(a), CpuMhz::new(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn prop_cpu_saturating_sub_never_negative(a in 0.0..1e7f64, b in 0.0..1e7f64) {
            let d = CpuMhz::new(a).saturating_sub(CpuMhz::new(b));
            prop_assert!(d.as_f64() >= 0.0);
        }

        #[test]
        fn prop_cpu_clamp_in_bounds(a in -1e6..1e7f64, lo in 0.0..1e3f64, span in 0.0..1e6f64) {
            let hi = lo + span;
            let c = CpuMhz::new(a).clamp(CpuMhz::new(lo), CpuMhz::new(hi));
            prop_assert!(c.as_f64() >= lo && c.as_f64() <= hi);
        }

        #[test]
        fn prop_mem_fits_antisymmetric_unless_equal(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let (x, y) = (MemMb::new(a), MemMb::new(b));
            if x.fits(y) && y.fits(x) {
                prop_assert_eq!(x, y);
            }
        }
    }
}
