//! Offline stand-in for `rayon`: `par_iter()` degrades to a sequential
//! `std` iterator. Call sites keep their shape (`.par_iter().map(..)
//! .collect()`), results are identical, and the real crate can be swapped
//! back in whenever the build environment gains registry access.

/// Borrowing parallel-iterator entry point (sequential fallback).
pub trait IntoParallelRefIterator<'data> {
    /// The iterator type (a plain sequential iterator here).
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item: 'data;
    /// "Parallel" iteration over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = std::slice::Iter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = std::slice::Iter<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> Self::Iter {
        self.iter()
    }
}

/// Mutably-borrowing parallel-iterator entry point (sequential fallback).
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator type (a plain sequential iterator here).
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item: 'data;
    /// "Parallel" iteration over `&mut self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = std::slice::IterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = std::slice::IterMut<'data, T>;
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.iter_mut()
    }
}

pub mod prelude {
    //! Drop-in for `rayon::prelude::*`.
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}
