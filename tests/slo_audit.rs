//! The SLA observability gate: per-app SLO tracking, violation
//! attribution, and the placement decision audit log must behave like
//! every other observability surface — one branch while off,
//! bit-identical simulation results while on, and deterministic exports
//! across repeat runs — while the attribution pass keeps its defining
//! invariant: the named causes of each cycle's deficit sum exactly to
//! the deficit they explain.

use slaq::core::spec::{ObserveSpec, ScenarioSpec};
use slaq::obs::{audit_jsonl, chrome_trace_json};
use slaq::sim::{SimReport, Simulator};

/// Run `cycles` control cycles of a preset with the given observability
/// setting, returning the report and the simulator (whose recorder
/// holds the SLO board and audit ring).
fn run(name: &str, observe: ObserveSpec, cycles: u32) -> (SimReport, Simulator) {
    let mut spec = ScenarioSpec::preset(name).expect("named preset");
    spec.timing.horizon_secs = spec.timing.control_period_secs * cycles as f64;
    spec.controller.observe = observe;
    let scenario = spec.materialize().unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut controller = scenario.controller();
    let mut sim = scenario.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = sim
        .run(controller.as_mut())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    (report, sim)
}

/// The tentpole pin, extended to the SLO/audit plane: with per-app SLO
/// tracking and decision auditing active (observe on registers every
/// app), metric series, job statistics, cycle and change counts stay
/// bit-identical to the unobserved run on every corpus preset.
#[test]
fn slo_and_audit_are_bit_identical_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let (off, off_sim) = run(name, ObserveSpec::Off, 4);
        let (on, on_sim) = run(name, ObserveSpec::On, 4);
        assert!(!off_sim.recorder().is_enabled());
        assert!(on_sim.recorder().is_enabled());
        assert_eq!(
            off.metrics, on.metrics,
            "{name}: metric series diverged under SLO/audit observation"
        );
        assert_eq!(off.job_stats, on.job_stats, "{name}: job stats diverged");
        assert_eq!(off.cycles, on.cycles, "{name}: cycle count diverged");
        assert_eq!(
            off.total_changes, on.total_changes,
            "{name}: change count diverged"
        );
        // The observed run actually tracked SLOs for every app in the
        // spec (absent `slo` blocks fall back to the default spec).
        let spec = ScenarioSpec::preset(name).expect("named preset");
        let board = on_sim.recorder().slo_board();
        assert_eq!(
            board.len(),
            spec.apps.len(),
            "{name}: SLO board should carry one tracker per app"
        );
        for (app, tracker) in &board {
            assert_eq!(
                tracker.cycles(),
                on.cycles as u64,
                "{name}/{app}: tracker should observe every control cycle"
            );
        }
    }
}

/// The attribution invariant: for every tracked app, the per-cause
/// decomposition accumulated over the run sums to the total deficit it
/// explains (the capacity cause takes the exact remainder, so this is
/// an identity up to f64 accumulation noise).
#[test]
fn attribution_sums_to_total_deficit_on_every_preset() {
    for name in ScenarioSpec::preset_names() {
        let (_, sim) = run(name, ObserveSpec::On, 6);
        for (app, tracker) in sim.recorder().slo_board() {
            let total = tracker.total_deficit_mhz();
            let parts = tracker.attribution().total();
            let tol = 1e-6 * total.max(1.0);
            assert!(
                (total - parts).abs() <= tol,
                "{name}/{app}: attribution {parts} != deficit {total}"
            );
            // Per-cycle too: the last observed sample's attribution
            // explains exactly that cycle's deficit.
            if let Some((sample, attr)) = tracker.last() {
                let tol = 1e-9 * sample.deficit_mhz.max(1.0);
                assert!(
                    (sample.deficit_mhz - attr.total()).abs() <= tol,
                    "{name}/{app}: last-cycle attribution {} != deficit {}",
                    attr.total(),
                    sample.deficit_mhz
                );
            }
        }
    }
}

/// Determinism: the audit JSONL export is bit-identical across repeat
/// runs of the same spec, for every corpus preset.
#[test]
fn audit_jsonl_is_bit_identical_across_repeat_runs() {
    for name in ScenarioSpec::preset_names() {
        let (_, a) = run(name, ObserveSpec::On, 4);
        let (_, b) = run(name, ObserveSpec::On, 4);
        let ja = audit_jsonl(a.recorder());
        let jb = audit_jsonl(b.recorder());
        assert_eq!(ja, jb, "{name}: audit JSONL diverged across repeat runs");
        // Every line is one JSON object with the full schema.
        for line in ja.lines() {
            let v: serde::Value = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("{name}: bad audit line {line:?}: {e}"));
            for key in ["cycle", "subject", "id", "from", "to", "step", "reason"] {
                assert!(
                    serde::obj_get(&v, key).is_ok(),
                    "{name}: audit line missing {key}: {line}"
                );
            }
        }
        assert_eq!(a.recorder().audit_dropped(), 0, "{name}: ring overflowed");
    }
}

/// Churny presets actually log decisions, stamped with in-range cycles
/// and solver-stage step names.
#[test]
fn audit_log_captures_solver_decisions() {
    let (report, sim) = run("paper-small", ObserveSpec::On, 4);
    let entries = sim.recorder().audit_entries();
    assert!(
        !entries.is_empty(),
        "a churny preset should log placement decisions"
    );
    for e in &entries {
        assert!(
            (e.cycle as usize) < report.cycles,
            "audit cycle {} out of range (ran {})",
            e.cycle,
            report.cycles
        );
        assert!(
            e.step.starts_with("solve.")
                || e.step.starts_with("shard.")
                || e.step.starts_with("pipeline."),
            "unexpected audit step {:?}",
            e.step
        );
        assert!(
            e.from.is_some() || e.to.is_some(),
            "an audit entry must name at least one node"
        );
    }
    // The off recorder's ring stays empty (one-branch-when-off).
    let (_, off_sim) = run("paper-small", ObserveSpec::Off, 4);
    assert!(off_sim.recorder().audit_entries().is_empty());
}

/// Satellite: the Chrome-trace export stays structurally valid on the
/// routing-heavy and consolidation presets (complete events carry
/// durations, all events carry the mandatory fields).
#[test]
fn chrome_trace_is_structurally_valid_on_routing_and_consolidation() {
    for name in ["request-routing", "consolidation"] {
        let (_, sim) = run(name, ObserveSpec::On, 4);
        let json = chrome_trace_json(sim.recorder());
        let v: serde::Value =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("{name}: trace not JSON: {e}"));
        let events = serde::obj_get(&v, "traceEvents").expect("traceEvents key");
        let serde::Value::Arr(events) = events else {
            panic!("{name}: traceEvents must be an array");
        };
        assert!(!events.is_empty(), "{name}: trace has no events");
        let str_of = |e: &serde::Value, key: &str| -> Option<String> {
            match serde::obj_get(e, key) {
                Ok(serde::Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let mut complete = 0usize;
        for e in events {
            let ev_name = str_of(e, "name").expect("every event is named");
            for key in ["ts", "pid", "tid"] {
                assert!(
                    matches!(
                        serde::obj_get(e, key),
                        Ok(serde::Value::Int(_) | serde::Value::Float(_))
                    ),
                    "{name}/{ev_name}: missing numeric {key}"
                );
            }
            match str_of(e, "ph").expect("every event has a phase").as_str() {
                "X" => {
                    assert!(
                        matches!(
                            serde::obj_get(e, "dur"),
                            Ok(serde::Value::Int(_) | serde::Value::Float(_))
                        ),
                        "{name}/{ev_name}: complete event lacks a duration"
                    );
                    complete += 1;
                }
                "i" => {}
                other => panic!("{name}/{ev_name}: unexpected phase {other:?}"),
            }
        }
        assert!(complete > 0, "{name}: no complete spans");
        for span in ["cycle", "cycle.sense", "cycle.solve", "cycle.actuate"] {
            assert!(
                events
                    .iter()
                    .any(|e| str_of(e, "name").as_deref() == Some(span)),
                "{name}: trace missing the {span} phase"
            );
        }
    }
}

/// The per-app `slo` block round-trips through spec JSON, a partial
/// block fills the remaining fields with defaults, and pre-SLO spec
/// files (no `slo` key) keep parsing.
#[test]
fn slo_spec_round_trips_and_fills_defaults() {
    let mut spec = ScenarioSpec::preset("paper-small").expect("named preset");
    let slo = slaq::obs::SloSpec {
        target_satisfied: 0.9,
        ..slaq::obs::SloSpec::default()
    };
    spec.apps[0].slo = Some(slo);
    let json = spec.to_json().expect("serialize");
    let back = ScenarioSpec::from_json(&json).expect("reparse");
    let got = back.apps[0].slo.expect("slo block survives");
    assert_eq!(got.target_satisfied, 0.9);
    assert_eq!(
        got.window_cycles,
        slaq::obs::SloSpec::default().window_cycles
    );
    // A pre-SLO spec file has no `slo` key at all: strip it back out
    // and the spec still parses with the block absent.
    let preset_json = ScenarioSpec::preset("paper-small")
        .expect("named preset")
        .to_json()
        .expect("serialize");
    let old = ScenarioSpec::from_json(&preset_json).expect("pre-SLO spec parses");
    assert!(old.apps.iter().all(|a| a.slo.is_none() || a.slo.is_some()));
    // A partial block fills defaults: only `target_satisfied` given.
    let partial = preset_json.replace(
        "\"name\": \"transactional\",",
        "\"name\": \"transactional\", \"slo\": {\"target_satisfied\": 0.5},",
    );
    assert_ne!(partial, preset_json, "expected the app in the preset");
    let parsed = ScenarioSpec::from_json(&partial).expect("partial slo parses");
    let app = parsed
        .apps
        .iter()
        .find(|a| a.name == "transactional")
        .expect("app present");
    let got = app.slo.expect("partial block present");
    assert_eq!(got.target_satisfied, 0.5);
    assert_eq!(got.error_budget, slaq::obs::SloSpec::default().error_budget);
}
