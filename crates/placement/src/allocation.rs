//! Exact CPU allocation for a *fixed* placement, via network flow.
//!
//! Once the discrete decisions are made (which instances exist, which jobs
//! run where), distributing CPU is a transportation problem:
//!
//! ```text
//! source ──demand──▶ entity ──placed-edge──▶ node ──capacity──▶ sink
//! ```
//!
//! Max-flow maximizes total satisfied demand; when even the maximum flow
//! cannot satisfy every target (discreteness made some commitment
//! unrealizable), the shortfall must land on the **jobs**: an
//! application's utility collapses catastrophically once its allocation
//! nears its offered load (response times diverge), while a shortchanged
//! job still makes progress on work-conserving spare capacity and merely
//! finishes later.
//!
//! The seed implementation expressed that bias as a 0/1-cost min-cost
//! flow (one Dijkstra per augmenting path — the dominant solver cost at
//! scale). With only two cost classes the same optimum falls out of a
//! **two-phase Dinic**: flow the applications first with the job source
//! edges gated shut, then open the gates and continue to the global
//! maximum. Phase 2 augmenting paths can reroute application slices
//! between nodes but can never reduce the application total (a reverse
//! source edge would revisit the source), so the application tier keeps
//! its phase-1 maximum — exactly the min-cost solution, with no
//! Bellman–Ford and no Dijkstra on the path at all.
//!
//! [`Allocator`] additionally keeps the transportation network **alive
//! across control cycles**: when the topology (who is placed where) is
//! unchanged from the previous call — the common warm re-solve — it only
//! rewrites edge capacities in place and re-flows, allocating nothing.

use crate::placement::Placement;
use crate::problem::{AppRequest, JobRequest, NodeCapacity};
use slaq_flow::{EdgeId, FlowNetwork, MaxFlowScratch};
use slaq_types::{AppId, CpuMhz, Interner, JobId, NodeId};
use std::collections::BTreeMap;

/// Sentinel separating per-app host runs in the flattened topology
/// signature.
const HOST_SEP: u32 = u32::MAX;

/// Reusable allocation engine: owns the transportation network, its
/// scratch memory, and the previous topology signature for warm reuse.
#[derive(Debug, Clone, Default)]
pub struct Allocator {
    net: FlowNetwork,
    scratch: MaxFlowScratch,
    // --- topology signature of the network currently built ---
    /// `false` until the first build: a fresh allocator must never take
    /// the warm path, even when the incoming signature is empty too.
    built: bool,
    sig_nodes: usize,
    sig_apps: usize,
    /// Per job: dense node index + 1, or 0 when unplaced.
    sig_job_place: Vec<u32>,
    /// Per app: its dense host indices, runs separated by [`HOST_SEP`].
    sig_hosts: Vec<u32>,
    // --- edge handles, valid for the current topology ---
    /// Source→job edge per job (the phase gate), for **all** jobs.
    job_gate: Vec<EdgeId>,
    /// Job→node edge per placed job.
    job_edge: Vec<Option<EdgeId>>,
    /// Source→app edge per app.
    app_gate: Vec<EdgeId>,
    /// App→node edges, flattened in `sig_hosts` order (separators skipped).
    app_edge: Vec<EdgeId>,
    /// Node→sink edge per node.
    node_edge: Vec<EdgeId>,
    // --- per-call builders (kept for allocation reuse) ---
    new_job_place: Vec<u32>,
    new_hosts: Vec<u32>,
}

impl Allocator {
    /// A fresh allocator with no cached network.
    pub fn new() -> Self {
        Allocator::default()
    }

    /// Compute allocations for a placement expressed in **dense node
    /// indices** (see [`slaq_types::Interner`]): `app_hosts[ai]` lists the
    /// dense node indices hosting app `ai`, `job_nodes[ji]` the dense node
    /// index running job `ji`. This is the solver's hot entry point.
    ///
    /// Returns a [`Placement`] with CPU slices filled in. Entities receive
    /// at most their demand; nodes are never overcommitted; total
    /// satisfied demand is maximal for this placement with the shortfall
    /// biased onto jobs (the flow optimum).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate_dense(
        &mut self,
        nodes: &[NodeCapacity],
        apps: &[AppRequest],
        app_hosts: &[Vec<usize>],
        jobs: &[JobRequest],
        job_nodes: &[Option<usize>],
        mhz_unit: f64,
    ) -> Placement {
        assert_eq!(apps.len(), app_hosts.len(), "one host list per app");
        assert_eq!(jobs.len(), job_nodes.len(), "one node slot per job");
        let unit = if mhz_unit > 0.0 { mhz_unit } else { 1.0 };
        // Demands round down too: granting an entity a fraction of a unit
        // less than its target is harmless, while rounding *capacities* up
        // would overcommit nodes by up to one unit.
        let to_units = |c: CpuMhz| -> i64 { (c.as_f64() / unit).floor().max(0.0) as i64 };
        let to_mhz = |u: i64| -> CpuMhz { CpuMhz::new(u as f64 * unit) };

        // ------------------------------------------------------------------
        // Topology signature: rebuild only when the shape changed.
        // ------------------------------------------------------------------
        self.new_job_place.clear();
        self.new_job_place.extend(job_nodes.iter().map(|n| match n {
            Some(ni) => *ni as u32 + 1,
            None => 0,
        }));
        self.new_hosts.clear();
        for hosts in app_hosts {
            self.new_hosts.extend(hosts.iter().map(|&ni| ni as u32));
            self.new_hosts.push(HOST_SEP);
        }
        let warm = self.built
            && self.sig_nodes == nodes.len()
            && self.sig_apps == apps.len()
            && self.sig_job_place == self.new_job_place
            && self.sig_hosts == self.new_hosts;

        // Graph layout: 0 = source; 1..=A apps; A+1..=A+J jobs;
        // A+J+1..=A+J+N nodes; last = sink.
        let n_apps = apps.len();
        let n_jobs = jobs.len();
        let source = 0usize;
        let app_vx = |i: usize| 1 + i;
        let job_vx = |i: usize| 1 + n_apps + i;
        let node_vx = |i: usize| 1 + n_apps + n_jobs + i;
        let sink = 1 + n_apps + n_jobs + nodes.len();

        if warm {
            // Same topology: rewrite every capacity in place (which also
            // discards last cycle's flow) — no graph construction at all.
            for (ji, job) in jobs.iter().enumerate() {
                let cap = to_units(job.demand);
                self.net.set_cap(self.job_gate[ji], cap);
                if let Some(e) = self.job_edge[ji] {
                    self.net.set_cap(e, cap);
                }
            }
            let mut flat = 0usize;
            for (ai, app) in apps.iter().enumerate() {
                let cap = to_units(app.demand);
                self.net.set_cap(self.app_gate[ai], cap);
                for _ in &app_hosts[ai] {
                    self.net.set_cap(self.app_edge[flat], cap);
                    flat += 1;
                }
            }
            for (ni, node) in nodes.iter().enumerate() {
                self.net.set_cap(self.node_edge[ni], to_units(node.cpu));
            }
        } else {
            self.net.clear(sink + 1);
            self.job_gate.clear();
            self.job_edge.clear();
            self.app_gate.clear();
            self.app_edge.clear();
            self.node_edge.clear();
            for (ji, job) in jobs.iter().enumerate() {
                let cap = to_units(job.demand);
                self.job_gate
                    .push(self.net.add_edge(source, job_vx(ji), cap));
                self.job_edge
                    .push(job_nodes[ji].map(|ni| self.net.add_edge(job_vx(ji), node_vx(ni), cap)));
            }
            for (ai, app) in apps.iter().enumerate() {
                let cap = to_units(app.demand);
                self.app_gate
                    .push(self.net.add_edge(source, app_vx(ai), cap));
                for &ni in &app_hosts[ai] {
                    self.app_edge
                        .push(self.net.add_edge(app_vx(ai), node_vx(ni), cap));
                }
            }
            for (ni, node) in nodes.iter().enumerate() {
                self.node_edge
                    .push(self.net.add_edge(node_vx(ni), sink, to_units(node.cpu)));
            }
            std::mem::swap(&mut self.sig_job_place, &mut self.new_job_place);
            std::mem::swap(&mut self.sig_hosts, &mut self.new_hosts);
            self.sig_nodes = nodes.len();
            self.sig_apps = apps.len();
            self.built = true;
        }

        // ------------------------------------------------------------------
        // Two-phase max-flow: apps first (gates shut), then jobs.
        // ------------------------------------------------------------------
        for gate in &self.job_gate {
            self.net.set_cap(*gate, 0);
        }
        self.net.max_flow_with(source, sink, &mut self.scratch);
        for (ji, job) in jobs.iter().enumerate() {
            self.net.set_cap(self.job_gate[ji], to_units(job.demand));
        }
        self.net.max_flow_with(source, sink, &mut self.scratch);

        // ------------------------------------------------------------------
        // Read back the allocation.
        // ------------------------------------------------------------------
        let mut placement = Placement::empty();
        let mut flat = 0usize;
        for (ai, app) in apps.iter().enumerate() {
            let slices = placement.apps.entry(app.id).or_default();
            // Every host keeps its instance even at zero flow (warm
            // instance).
            for &ni in &app_hosts[ai] {
                slices.insert(nodes[ni].id, CpuMhz::ZERO);
            }
            for &ni in &app_hosts[ai] {
                let f = self.net.flow_on(self.app_edge[flat]);
                flat += 1;
                if f > 0 {
                    slices.insert(nodes[ni].id, to_mhz(f));
                }
            }
        }
        for (ji, job) in jobs.iter().enumerate() {
            if let (Some(ni), Some(e)) = (job_nodes[ji], self.job_edge[ji]) {
                placement
                    .jobs
                    .insert(job.id, (nodes[ni].id, to_mhz(self.net.flow_on(e))));
            }
        }
        placement
    }
}

/// Compute allocations for the given instance/job placement (id-keyed
/// convenience API; builds a fresh [`Allocator`] per call).
///
/// * `app_instances[a]` — nodes hosting an instance of `a`;
/// * `job_nodes[j]` — node hosting running job `j`.
pub fn allocate(
    nodes: &[NodeCapacity],
    apps: &[AppRequest],
    app_instances: &BTreeMap<AppId, Vec<NodeId>>,
    jobs: &[JobRequest],
    job_nodes: &BTreeMap<JobId, NodeId>,
    mhz_unit: f64,
) -> Placement {
    let node_ix = Interner::new(nodes.iter().map(|n| n.id));
    let app_hosts: Vec<Vec<usize>> = apps
        .iter()
        .map(|a| {
            app_instances
                .get(&a.id)
                .map(|hosts| hosts.iter().filter_map(|h| node_ix.dense(*h)).collect())
                .unwrap_or_default()
        })
        .collect();
    let job_dense: Vec<Option<usize>> = jobs
        .iter()
        .map(|j| job_nodes.get(&j.id).and_then(|n| node_ix.dense(*n)))
        .collect();
    Allocator::new().allocate_dense(nodes, apps, &app_hosts, jobs, &job_dense, mhz_unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slaq_types::MemMb;

    fn node(id: u32, cpu: f64) -> NodeCapacity {
        NodeCapacity {
            id: NodeId::new(id),
            cpu: CpuMhz::new(cpu),
            mem: MemMb::new(4096),
        }
    }

    fn app(id: u32, demand: f64) -> AppRequest {
        AppRequest {
            id: AppId::new(id),
            demand: CpuMhz::new(demand),
            mem_per_instance: MemMb::new(1024),
            min_instances: 0,
            max_instances: 32,
        }
    }

    fn jobr(id: u32, demand: f64) -> JobRequest {
        JobRequest {
            id: JobId::new(id),
            demand: CpuMhz::new(demand),
            mem: MemMb::new(1280),
            running_on: None,
            affinity: None,
            priority: demand,
        }
    }

    #[test]
    fn single_app_single_node_gets_its_demand() {
        let nodes = [node(0, 12_000.0)];
        let apps = [app(0, 5000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(5000.0));
    }

    #[test]
    fn app_spreads_across_nodes() {
        let nodes = [node(0, 4000.0), node(1, 4000.0), node(2, 4000.0)];
        let apps = [app(0, 10_000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(
            AppId::new(0),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
        );
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(10_000.0));
        for n in 0..3 {
            assert!(p.node_cpu_used(NodeId::new(n)).as_f64() <= 4000.0 + 1e-6);
        }
    }

    #[test]
    fn jobs_win_contended_nodes_apps_recover_elsewhere() {
        // Node0: 3000 MHz, hosts a 3000-demand job AND an app instance.
        // Node1: 3000 MHz, app-only. App demand 3000.
        // The job must be satisfied on node0; the app shifts to node1.
        let nodes = [node(0, 3000.0), node(1, 3000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0), NodeId::new(1)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.apps[&AppId::new(0)][&NodeId::new(1)], CpuMhz::new(3000.0));
    }

    #[test]
    fn shortfall_lands_on_the_job() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 3000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        let p = allocate(&nodes, &apps, &inst, &jobs, &jn, 1.0);
        // App saturates first (phase bias: its utility cliffs at its
        // offered load); the job absorbs the shortfall and will catch up
        // on work-conserving spare in the simulator.
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::new(3000.0));
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::new(1000.0));
    }

    #[test]
    fn unplaced_jobs_get_nothing() {
        let nodes = [node(0, 4000.0)];
        let jobs = [jobr(0, 3000.0)];
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &BTreeMap::new(), 1.0);
        assert_eq!(p.job_alloc(JobId::new(0)), CpuMhz::ZERO);
        assert!(p.job_node(JobId::new(0)).is_none());
    }

    #[test]
    fn warm_instances_survive_with_zero_flow() {
        let nodes = [node(0, 4000.0)];
        let apps = [app(0, 0.0)];
        let mut inst = BTreeMap::new();
        inst.insert(AppId::new(0), vec![NodeId::new(0)]);
        let p = allocate(&nodes, &apps, &inst, &[], &BTreeMap::new(), 1.0);
        assert_eq!(p.app_instances(AppId::new(0)), 1);
        assert_eq!(p.app_alloc(AppId::new(0)), CpuMhz::ZERO);
    }

    #[test]
    fn multiple_jobs_on_one_node_share_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3000.0), jobr(1, 3000.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 1.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert_eq!(total, CpuMhz::new(5000.0));
        assert!(p.job_alloc(JobId::new(0)).as_f64() <= 3000.0 + 1e-9);
        assert!(p.job_alloc(JobId::new(1)).as_f64() <= 3000.0 + 1e-9);
    }

    #[test]
    fn coarse_mhz_unit_still_respects_capacity() {
        let nodes = [node(0, 5000.0)];
        let jobs = [jobr(0, 3333.0), jobr(1, 3333.0)];
        let mut jn = BTreeMap::new();
        jn.insert(JobId::new(0), NodeId::new(0));
        jn.insert(JobId::new(1), NodeId::new(0));
        let p = allocate(&nodes, &[], &BTreeMap::new(), &jobs, &jn, 100.0);
        let total = p.job_alloc(JobId::new(0)) + p.job_alloc(JobId::new(1));
        assert!(total.as_f64() <= 5000.0 + 1e-6);
        assert!(total.as_f64() >= 4900.0);
    }

    #[test]
    fn empty_problem_on_fresh_allocator_yields_empty_placement() {
        // Regression: an empty problem's topology signature matches a
        // fresh allocator's default (empty) signature; the warm path must
        // still be refused, since no network exists yet.
        let mut alloc = Allocator::new();
        let p = alloc.allocate_dense(&[], &[], &[], &[], &[], 1.0);
        assert!(p.apps.is_empty());
        assert!(p.jobs.is_empty());
        // And again, now genuinely warm.
        let p = alloc.allocate_dense(&[], &[], &[], &[], &[], 1.0);
        assert!(p.jobs.is_empty());
    }

    #[test]
    fn warm_reuse_matches_fresh_allocation() {
        // Same topology, changing demands: the warm path (capacity
        // rewrite) must produce exactly what a cold build produces.
        let nodes = [node(0, 6000.0), node(1, 4000.0), node(2, 9000.0)];
        let app_hosts = vec![vec![0usize, 2], vec![1usize, 2]];
        let job_nodes = vec![Some(0usize), Some(1), None, Some(2)];
        let mut warm = Allocator::new();
        for scale in [1.0f64, 0.4, 1.7, 0.0, 1.0] {
            let jobs = [
                jobr(0, 3000.0 * scale),
                jobr(1, 2000.0 * scale),
                jobr(2, 1000.0),
                jobr(3, 4000.0 * scale),
            ];
            let apps_scaled = [app(0, 5000.0 * scale), app(1, 2500.0)];
            let got = warm.allocate_dense(&nodes, &apps_scaled, &app_hosts, &jobs, &job_nodes, 1.0);
            let fresh = Allocator::new().allocate_dense(
                &nodes,
                &apps_scaled,
                &app_hosts,
                &jobs,
                &job_nodes,
                1.0,
            );
            assert_eq!(got, fresh, "scale {scale}");
        }
    }

    #[test]
    fn topology_change_rebuilds_correctly() {
        let nodes = [node(0, 6000.0), node(1, 6000.0)];
        let apps = [app(0, 4000.0)];
        let jobs = [jobr(0, 3000.0)];
        let mut alloc = Allocator::new();
        // Cycle 1: app on node0 only, job on node0 — the app saturates
        // first (shortfall bias), the job absorbs the remainder.
        let p1 = alloc.allocate_dense(&nodes, &apps, &[vec![0]], &jobs, &[Some(0)], 1.0);
        assert_eq!(p1.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert_eq!(p1.job_alloc(JobId::new(0)), CpuMhz::new(2000.0));
        // Cycle 2: app grows to node1; job migrates to node1.
        let p2 = alloc.allocate_dense(&nodes, &apps, &[vec![0, 1]], &jobs, &[Some(1)], 1.0);
        assert_eq!(p2.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert_eq!(p2.job_alloc(JobId::new(0)), CpuMhz::new(3000.0));
        // Cycle 3: job unplaced (topology shrinks).
        let p3 = alloc.allocate_dense(&nodes, &apps, &[vec![0, 1]], &jobs, &[None], 1.0);
        assert_eq!(p3.app_alloc(AppId::new(0)), CpuMhz::new(4000.0));
        assert!(p3.job_node(JobId::new(0)).is_none());
    }
}
