//! Adversarial workloads and the correctness harness that rides them.
//!
//! This module supplies three things the friendly corpus presets never
//! exercise:
//!
//! 1. **Chaos plans** — a seeded [`ChaosSpec`] describing correlated
//!    zone-outage storms, flapping nodes, mid-run capacity degradation,
//!    flash-crowd demand spikes, and antagonist batch floods. A spec is
//!    *lowered* ([`ChaosSpec::lower`]) into a concrete [`FaultPlan`]
//!    built from the machinery the simulator already has — node outages,
//!    capacity dips, an extra intensity trace, a synthesized job stream —
//!    so chaos composes with every controller unchanged.
//! 2. **Overbooking and elasticity models** — [`OvercommitSpec`]
//!    advertises inflated node capacities to the controller while a
//!    seeded true-usage model occasionally claws the real capacity back
//!    ([`bite_factor`]); [`ElasticitySpec`] resizes running jobs mid-run
//!    so the delta tracker sees genuine vertical elasticity.
//! 3. **An [`InvariantChecker`]** — a [`Controller`] wrapper that
//!    re-checks every placement a controller emits against the safety
//!    properties no amount of chaos may break: no assignments on dead
//!    nodes, per-node allocations within advertised capacity, the change
//!    budget held, and per-job grants conserved within `max_speed`.
//!
//! Everything here is deterministic: all randomness flows from the
//! scenario seed through counter-keyed [`ChaCha12Rng`] streams, so a
//! chaos run is exactly as replayable as a friendly one.

use std::collections::BTreeMap;

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use slaq_placement::Placement;
use slaq_types::{NodeId, SimTime, ZoneId};
use slaq_workloads::IntensityTrace;

use crate::metrics::MetricsSink;
use crate::simulator::{ControlInputs, Controller, NodeOutage};
use slaq_obs::Recorder;

/// Draw a uniform `f64` in `[0, 1)` from an RNG (53-bit mantissa path,
/// matching the workspace `rand` conventions).
fn unit_f64(rng: &mut ChaCha12Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Draw a uniform index in `[0, n)`. `n` must be non-zero.
fn index(rng: &mut ChaCha12Rng, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

// ---------------------------------------------------------------------------
// Chaos spec
// ---------------------------------------------------------------------------

/// Correlated zone-outage storms: every `period_secs`, starting at
/// `first_secs`, a storm takes a seeded fraction of the nodes in
/// `zones_per_storm` randomly chosen zones down for `duration_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneStormSpec {
    /// First storm instant (seconds).
    pub first_secs: f64,
    /// Storm recurrence period (seconds).
    pub period_secs: f64,
    /// How long each storm's outages last (seconds); must be shorter
    /// than the period so the cluster recovers between storms.
    pub duration_secs: f64,
    /// Distinct zones struck per storm (capped at the zone count).
    pub zones_per_storm: u32,
    /// Fraction of each struck zone's nodes taken down, in `(0, 1]`
    /// (at least one node per struck zone).
    pub node_fraction: f64,
}

/// Flapping nodes: a seeded subset of nodes goes down and comes back
/// periodically, each with its own seeded phase so the flaps interleave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapSpec {
    /// How many distinct nodes flap (capped at the node count).
    pub nodes: u32,
    /// Earliest flap onset (seconds); each flapper adds a seeded phase
    /// in `[0, period_secs)`.
    pub first_secs: f64,
    /// Flap recurrence period per node (seconds).
    pub period_secs: f64,
    /// Down time per flap (seconds); must be shorter than the period.
    pub down_secs: f64,
}

/// Mid-run capacity degradation: a seeded subset of nodes runs at a
/// fraction of its CPU during a window (thermal throttling, a noisy
/// co-tenant) without going fully down — memory is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationSpec {
    /// How many distinct nodes degrade (capped at the node count).
    pub nodes: u32,
    /// Degradation onset (seconds).
    pub from_secs: f64,
    /// Degradation end (seconds); must exceed the onset.
    pub to_secs: f64,
    /// CPU multiplier during the window, in `(0, 1)`.
    pub cpu_factor: f64,
}

/// Flash-crowd demand spikes: a rectangular surge added on top of every
/// transactional application's intensity trace, recurring with a fixed
/// period. Deterministic (no sampling) so demand is identical across
/// controller variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Extra request rate during a spike (req/s).
    pub surge: f64,
    /// First spike onset (seconds).
    pub first_secs: f64,
    /// Spike recurrence period (seconds).
    pub period_secs: f64,
    /// Spike duration (seconds); must be shorter than the period.
    pub spike_secs: f64,
}

/// Antagonist batch floods: periodic drops of identical short jobs
/// designed to contend with the resident workload for spare CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloodSpec {
    /// First drop instant (seconds).
    pub first_secs: f64,
    /// Drop recurrence period (seconds).
    pub period_secs: f64,
    /// Jobs per drop.
    pub batch_size: u32,
    /// Total flood jobs across the run (truncates the last drops).
    pub max_jobs: u32,
    /// CPU work per flood job, expressed as seconds at the job's
    /// maximum speed.
    pub work_secs: f64,
    /// Memory footprint per flood job (MB).
    pub mem_mb: u64,
}

/// The adversarial-workload block of a scenario spec. Every field is
/// optional and independent; an all-`None` spec is a no-op, and specs
/// written before this block existed keep parsing (the key is simply
/// absent).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// Correlated zone-outage storms.
    pub zone_storms: Option<ZoneStormSpec>,
    /// Flapping nodes.
    pub flaps: Option<FlapSpec>,
    /// Mid-run capacity degradation.
    pub degradation: Option<DegradationSpec>,
    /// Flash-crowd demand spikes.
    pub flash_crowds: Option<FlashCrowdSpec>,
    /// Antagonist batch floods.
    pub batch_floods: Option<FloodSpec>,
}

fn require(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_string())
    }
}

impl ChaosSpec {
    /// `true` when no chaos dimension is configured.
    pub fn is_empty(&self) -> bool {
        *self == ChaosSpec::default()
    }

    /// Structural sanity of every configured dimension; returns a
    /// message naming the offending field on failure. `node_count` is
    /// the cluster size the plan will be lowered against.
    pub fn validate(&self, node_count: usize) -> Result<(), String> {
        if let Some(s) = &self.zone_storms {
            require(
                s.first_secs.is_finite() && s.first_secs >= 0.0,
                "zone_storms.first_secs must be finite and non-negative",
            )?;
            require(
                s.period_secs.is_finite() && s.period_secs > 0.0,
                "zone_storms.period_secs must be positive",
            )?;
            require(
                s.duration_secs > 0.0 && s.duration_secs < s.period_secs,
                "zone_storms.duration_secs must be in (0, period_secs)",
            )?;
            require(
                s.zones_per_storm >= 1,
                "zone_storms.zones_per_storm must be at least 1",
            )?;
            require(
                s.node_fraction > 0.0 && s.node_fraction <= 1.0,
                "zone_storms.node_fraction must be in (0, 1]",
            )?;
        }
        if let Some(f) = &self.flaps {
            require(f.nodes >= 1, "flaps.nodes must be at least 1")?;
            require(
                (f.nodes as usize) <= node_count,
                "flaps.nodes exceeds the cluster size",
            )?;
            require(
                f.first_secs.is_finite() && f.first_secs >= 0.0,
                "flaps.first_secs must be finite and non-negative",
            )?;
            require(
                f.period_secs.is_finite() && f.period_secs > 0.0,
                "flaps.period_secs must be positive",
            )?;
            require(
                f.down_secs > 0.0 && f.down_secs < f.period_secs,
                "flaps.down_secs must be in (0, period_secs)",
            )?;
        }
        if let Some(d) = &self.degradation {
            require(d.nodes >= 1, "degradation.nodes must be at least 1")?;
            require(
                (d.nodes as usize) <= node_count,
                "degradation.nodes exceeds the cluster size",
            )?;
            require(
                d.from_secs.is_finite() && d.from_secs >= 0.0,
                "degradation.from_secs must be finite and non-negative",
            )?;
            require(
                d.to_secs.is_finite() && d.to_secs > d.from_secs,
                "degradation.to_secs must exceed from_secs",
            )?;
            require(
                d.cpu_factor > 0.0 && d.cpu_factor < 1.0,
                "degradation.cpu_factor must be in (0, 1)",
            )?;
        }
        if let Some(fc) = &self.flash_crowds {
            require(
                fc.surge.is_finite() && fc.surge > 0.0,
                "flash_crowds.surge must be positive",
            )?;
            require(
                fc.first_secs.is_finite() && fc.first_secs >= 0.0,
                "flash_crowds.first_secs must be finite and non-negative",
            )?;
            require(
                fc.period_secs.is_finite() && fc.period_secs > 0.0,
                "flash_crowds.period_secs must be positive",
            )?;
            require(
                fc.spike_secs > 0.0 && fc.spike_secs < fc.period_secs,
                "flash_crowds.spike_secs must be in (0, period_secs)",
            )?;
        }
        if let Some(fl) = &self.batch_floods {
            require(
                fl.first_secs.is_finite() && fl.first_secs >= 0.0,
                "batch_floods.first_secs must be finite and non-negative",
            )?;
            require(
                fl.period_secs.is_finite() && fl.period_secs > 0.0,
                "batch_floods.period_secs must be positive",
            )?;
            require(
                fl.batch_size >= 1,
                "batch_floods.batch_size must be at least 1",
            )?;
            require(fl.max_jobs >= 1, "batch_floods.max_jobs must be at least 1")?;
            require(
                fl.work_secs.is_finite() && fl.work_secs > 0.0,
                "batch_floods.work_secs must be positive",
            )?;
            require(fl.mem_mb >= 1, "batch_floods.mem_mb must be at least 1")?;
        }
        Ok(())
    }

    /// Lower the spec into a concrete [`FaultPlan`] against a cluster.
    ///
    /// `zone_table[i]` is the zone of node `i` (one entry per node —
    /// for an unzoned cluster pass the same zone for every node).
    /// All sampling is seeded from `seed` through per-dimension
    /// domain-separated streams, so the plan is a pure function of
    /// `(spec, seed, horizon, zone_table)`.
    pub fn lower(&self, seed: u64, horizon_secs: f64, zone_table: &[ZoneId]) -> FaultPlan {
        let mut outages = Vec::new();
        let mut dips = Vec::new();

        if let Some(s) = &self.zone_storms {
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x5a6f_6e65_5374_6f72); // "ZoneStor"
            let mut zones: Vec<ZoneId> = zone_table.to_vec();
            zones.sort_unstable();
            zones.dedup();
            if !zones.is_empty() {
                let mut t = s.first_secs;
                while t < horizon_secs {
                    let mut pool = zones.clone();
                    for _ in 0..(s.zones_per_storm as usize).min(zones.len()) {
                        let zone = pool.swap_remove(index(&mut rng, pool.len()));
                        let mut members: Vec<u32> = zone_table
                            .iter()
                            .enumerate()
                            .filter(|&(_, z)| *z == zone)
                            .map(|(i, _)| i as u32)
                            .collect();
                        let strike = ((members.len() as f64 * s.node_fraction).ceil() as usize)
                            .clamp(1, members.len());
                        for _ in 0..strike {
                            let node = members.swap_remove(index(&mut rng, members.len()));
                            outages.push(NodeOutage {
                                node: NodeId::new(node),
                                from: SimTime::from_secs(t),
                                to: SimTime::from_secs(t + s.duration_secs),
                            });
                        }
                    }
                    t += s.period_secs;
                }
            }
        }

        if let Some(f) = &self.flaps {
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x466c_6170_4e6f_6465); // "FlapNode"
            let mut pool: Vec<u32> = (0..zone_table.len() as u32).collect();
            for _ in 0..(f.nodes as usize).min(pool.len()) {
                let node = pool.swap_remove(index(&mut rng, pool.len()));
                let phase = unit_f64(&mut rng) * f.period_secs;
                let mut t = f.first_secs + phase;
                while t < horizon_secs {
                    outages.push(NodeOutage {
                        node: NodeId::new(node),
                        from: SimTime::from_secs(t),
                        to: SimTime::from_secs(t + f.down_secs),
                    });
                    t += f.period_secs;
                }
            }
        }

        if let Some(d) = &self.degradation {
            let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x4465_6772_6164_6531); // "Degrade1"
            let mut pool: Vec<u32> = (0..zone_table.len() as u32).collect();
            for _ in 0..(d.nodes as usize).min(pool.len()) {
                let node = pool.swap_remove(index(&mut rng, pool.len()));
                dips.push(CapacityDip {
                    node: NodeId::new(node),
                    from: SimTime::from_secs(d.from_secs),
                    to: SimTime::from_secs(d.to_secs),
                    cpu_factor: d.cpu_factor,
                });
            }
            dips.sort_by_key(|d| d.node);
        }

        let spike = self.flash_crowds.map(|fc| IntensityTrace::Spiky {
            base: 0.0,
            surge: fc.surge,
            period_secs: fc.period_secs,
            spike_secs: fc.spike_secs,
            phase_secs: fc.first_secs,
        });

        FaultPlan {
            outages: merge_outages(outages),
            dips,
            spike,
            flood: self.batch_floods,
        }
    }
}

/// A lowered chaos plan: plain simulator inputs, ready to install.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Node outages (per-node windows merged and disjoint).
    pub outages: Vec<NodeOutage>,
    /// Partial-capacity windows.
    pub dips: Vec<CapacityDip>,
    /// Extra demand to sum onto every transactional app's trace.
    pub spike: Option<IntensityTrace>,
    /// Antagonist batch flood to synthesize as an extra job stream.
    pub flood: Option<FloodSpec>,
}

/// Merge overlapping or touching outage windows per node so the lowered
/// plan is disjoint — storms and flaps may strike the same node.
fn merge_outages(mut v: Vec<NodeOutage>) -> Vec<NodeOutage> {
    v.sort_by(|a, b| a.node.cmp(&b.node).then(a.from.total_cmp(b.from)));
    let mut out: Vec<NodeOutage> = Vec::new();
    for o in v {
        match out.last_mut() {
            Some(last) if last.node == o.node && o.from <= last.to => {
                if o.to > last.to {
                    last.to = o.to;
                }
            }
            _ => out.push(o),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Capacity dips
// ---------------------------------------------------------------------------

/// A partial-capacity window: the node's CPU is scaled by `cpu_factor`
/// during `[from, to)` while its memory stays intact. Unlike an outage
/// the node stays alive, so placed work keeps running — slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityDip {
    /// The degraded node.
    pub node: NodeId,
    /// Degradation onset.
    pub from: SimTime,
    /// Recovery instant.
    pub to: SimTime,
    /// CPU multiplier during the window, in `(0, 1)`.
    pub cpu_factor: f64,
}

// ---------------------------------------------------------------------------
// Overbooking
// ---------------------------------------------------------------------------

/// Overbooking knobs: the controller is shown node capacities inflated
/// by the overcommit ratios, while a seeded true-usage model decides,
/// per node per control cycle, whether the physical capacity "bites" —
/// drops below what was promised — forcing proportional clipping of
/// everything granted on that node. The penalty surfaces in satisfied
/// CPU and as the `overcommit` attribution cause.
///
/// The model assumes transactional allocations are capped at their
/// solver slices (`timing.cap_transactional`, the corpus default), so
/// per-node grants are exactly the enacted placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OvercommitSpec {
    /// Advertised-CPU multiplier, `>= 1`.
    pub cpu_ratio: f64,
    /// Advertised-memory multiplier, `>= 1`.
    pub mem_ratio: f64,
    /// Per-node per-cycle probability that true usage bites, in `[0, 1]`.
    pub bite_prob: f64,
    /// Fraction of physical CPU lost when a bite lands, in `(0, 1]`:
    /// true capacity becomes `physical * (1 - bite_depth)`.
    pub bite_depth: f64,
}

impl OvercommitSpec {
    /// Structural sanity; returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        require(
            self.cpu_ratio.is_finite() && self.cpu_ratio >= 1.0,
            "overcommit.cpu_ratio must be >= 1",
        )?;
        require(
            self.mem_ratio.is_finite() && self.mem_ratio >= 1.0,
            "overcommit.mem_ratio must be >= 1",
        )?;
        require(
            (0.0..=1.0).contains(&self.bite_prob),
            "overcommit.bite_prob must be in [0, 1]",
        )?;
        require(
            self.bite_depth > 0.0 && self.bite_depth <= 1.0,
            "overcommit.bite_depth must be in (0, 1]",
        )?;
        Ok(())
    }
}

/// The true-usage model: the fraction of a node's *physical* CPU
/// actually available during one control cycle. Keyed on
/// `(seed, cycle, node)` through a domain-separated [`ChaCha12Rng`]
/// stream — a pure function, identical across controller variants, so
/// bit-identity oracles (delta vs batch, observed vs not) hold under
/// overbooking too.
pub fn bite_factor(seed: u64, cycle: u64, node: NodeId, spec: &OvercommitSpec) -> f64 {
    let key = seed
        ^ 0x4f76_6572_636f_6d31 // "Overcom1"
        ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (node.raw() as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut rng = ChaCha12Rng::seed_from_u64(key);
    if unit_f64(&mut rng) < spec.bite_prob {
        1.0 - spec.bite_depth
    } else {
        1.0
    }
}

// ---------------------------------------------------------------------------
// Elasticity
// ---------------------------------------------------------------------------

/// Vertical elasticity: at seeded instants a random active job's
/// remaining work grows or shrinks (a resize request mid-run). The
/// resize flows through the snapshot differ as a `resized_jobs` entry,
/// exercising the delta solver's churn path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticitySpec {
    /// First resize instant (seconds).
    pub first_secs: f64,
    /// Resize recurrence period (seconds).
    pub period_secs: f64,
    /// Remaining-work multiplier on grow events, `> 1`.
    pub grow_factor: f64,
    /// Remaining-work multiplier on shrink events, in `(0, 1)`.
    pub shrink_factor: f64,
    /// Total resize events across the run.
    pub max_events: u32,
}

impl ElasticitySpec {
    /// Structural sanity; returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        require(
            self.first_secs.is_finite() && self.first_secs >= 0.0,
            "elasticity.first_secs must be finite and non-negative",
        )?;
        require(
            self.period_secs.is_finite() && self.period_secs > 0.0,
            "elasticity.period_secs must be positive",
        )?;
        require(
            self.grow_factor.is_finite() && self.grow_factor > 1.0,
            "elasticity.grow_factor must exceed 1",
        )?;
        require(
            self.shrink_factor > 0.0 && self.shrink_factor < 1.0,
            "elasticity.shrink_factor must be in (0, 1)",
        )?;
        require(
            self.max_events >= 1,
            "elasticity.max_events must be at least 1",
        )?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

/// A [`Controller`] wrapper that re-checks every placement the inner
/// controller emits against cycle-level safety invariants:
///
/// 1. **No dead-node assignments** — no job and no positive app slice
///    lands on a zero-CPU (down) or unknown node.
/// 2. **Allocations within capacity** — per node, the sum of job grants
///    and app slices fits the advertised CPU, and placed memory
///    (job VMs + app instances) fits the advertised memory.
/// 3. **Change budget held** — the diff against the in-force placement
///    stays within `max_changes` when a budget is configured.
/// 4. **Conservation of job CPU** — every placed job is active and its
///    grant is finite, non-negative, and within the job's `max_speed`.
///
/// The companion attribution invariant (per-cause deficit parts sum to
/// the deficit they explain) lives on the SLO board and is asserted by
/// the adversarial test gate rather than here, since it is a property
/// of the observation plane, not of a single placement.
///
/// Violations are collected as human-readable strings (capped at
/// [`InvariantChecker::MAX_VIOLATIONS`]) instead of panicking, so a
/// harness can run a whole scenario and report everything at once.
pub struct InvariantChecker {
    inner: Box<dyn Controller>,
    max_changes: Option<usize>,
    violations: Vec<String>,
    cycles_checked: usize,
}

impl InvariantChecker {
    /// Cap on collected violation messages.
    pub const MAX_VIOLATIONS: usize = 64;

    /// Wrap a controller; `max_changes` is the per-cycle change budget
    /// to enforce, if the scenario configures one.
    pub fn new(inner: Box<dyn Controller>, max_changes: Option<usize>) -> Self {
        InvariantChecker {
            inner,
            max_changes,
            violations: Vec::new(),
            cycles_checked: 0,
        }
    }

    /// Violations collected so far (empty means every cycle was clean).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of control cycles checked.
    pub fn cycles_checked(&self) -> usize {
        self.cycles_checked
    }

    fn record(&mut self, msg: String) {
        if self.violations.len() < Self::MAX_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    fn check(&mut self, inputs: &ControlInputs<'_>, next: &Placement) {
        let cycle = self.cycles_checked;
        self.cycles_checked += 1;

        let nodes: BTreeMap<NodeId, (f64, u64)> = inputs
            .nodes
            .iter()
            .map(|n| (n.id, (n.cpu.as_f64(), n.mem.as_u64())))
            .collect();
        let mut cpu_used: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut mem_used: BTreeMap<NodeId, u64> = BTreeMap::new();

        // Jobs: liveness, conservation, per-node accumulation.
        for (&job, &(node, grant)) in &next.jobs {
            let g = grant.as_f64();
            match nodes.get(&node) {
                None => self.record(format!("cycle {cycle}: {job} placed on unknown {node}")),
                Some(&(cpu, _)) if cpu <= 0.0 => {
                    self.record(format!("cycle {cycle}: {job} placed on dead {node}"))
                }
                Some(_) => {}
            }
            match inputs.jobs.job(job) {
                Ok(j) => {
                    if !j.is_active() {
                        self.record(format!("cycle {cycle}: completed {job} still placed"));
                    }
                    let max = j.spec.max_speed.as_f64();
                    if !g.is_finite() || g < 0.0 || g > max * (1.0 + 1e-9) + 1e-9 {
                        self.record(format!(
                            "cycle {cycle}: {job} grant {g} MHz outside [0, max_speed {max}]"
                        ));
                    }
                    *mem_used.entry(node).or_insert(0) += j.spec.mem.as_u64();
                }
                Err(_) => self.record(format!("cycle {cycle}: unknown {job} in placement")),
            }
            *cpu_used.entry(node).or_insert(0.0) += g;
        }

        // Apps: liveness and per-node accumulation.
        for (&app, slices) in &next.apps {
            let mem_per = inputs
                .apps
                .iter()
                .find(|a| a.id == app)
                .map(|a| a.spec.mem_per_instance.as_u64());
            if mem_per.is_none() {
                self.record(format!("cycle {cycle}: unknown {app} in placement"));
            }
            for (&node, &slice) in slices {
                let s = slice.as_f64();
                match nodes.get(&node) {
                    None => self.record(format!("cycle {cycle}: {app} instance on unknown {node}")),
                    Some(&(cpu, _)) if cpu <= 0.0 && s > 0.0 => self.record(format!(
                        "cycle {cycle}: {app} has a {s} MHz slice on dead {node}"
                    )),
                    Some(_) => {}
                }
                if !s.is_finite() || s < 0.0 {
                    self.record(format!(
                        "cycle {cycle}: {app} slice {s} MHz on {node} not finite/non-negative"
                    ));
                }
                *cpu_used.entry(node).or_insert(0.0) += s;
                *mem_used.entry(node).or_insert(0) += mem_per.unwrap_or(0);
            }
        }

        // Per-node capacity.
        for (&node, &used) in &cpu_used {
            if let Some(&(cpu, _)) = nodes.get(&node) {
                if used > cpu * (1.0 + 1e-9) + 1e-6 {
                    self.record(format!(
                        "cycle {cycle}: {node} CPU oversubscribed: {used:.3} > {cpu:.3} MHz"
                    ));
                }
            }
        }
        for (&node, &used) in &mem_used {
            if let Some(&(_, mem)) = nodes.get(&node) {
                if used > mem {
                    self.record(format!(
                        "cycle {cycle}: {node} memory oversubscribed: {used} > {mem} MB"
                    ));
                }
            }
        }

        // Change budget.
        if let Some(budget) = self.max_changes {
            let changes = next.diff(inputs.current).len();
            if changes > budget {
                self.record(format!(
                    "cycle {cycle}: {changes} changes exceed the budget of {budget}"
                ));
            }
        }
    }
}

impl Controller for InvariantChecker {
    fn control(&mut self, inputs: &ControlInputs<'_>, metrics: &mut MetricsSink) -> Placement {
        let next = self.inner.control(inputs, metrics);
        self.check(inputs, &next);
        next
    }

    fn control_delta(
        &mut self,
        inputs: &ControlInputs<'_>,
        delta: Option<&slaq_placement::SolveDelta>,
        metrics: &mut MetricsSink,
    ) -> Placement {
        let next = self.inner.control_delta(inputs, delta, metrics);
        self.check(inputs, &next);
        next
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.inner.set_recorder(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_spec() -> ChaosSpec {
        ChaosSpec {
            zone_storms: Some(ZoneStormSpec {
                first_secs: 1000.0,
                period_secs: 4000.0,
                duration_secs: 900.0,
                zones_per_storm: 1,
                node_fraction: 0.5,
            }),
            ..ChaosSpec::default()
        }
    }

    fn zones(table: &[u32]) -> Vec<ZoneId> {
        table.iter().map(|&z| ZoneId::new(z)).collect()
    }

    #[test]
    fn lowering_is_deterministic_in_the_seed() {
        let spec = ChaosSpec {
            flaps: Some(FlapSpec {
                nodes: 2,
                first_secs: 500.0,
                period_secs: 3000.0,
                down_secs: 600.0,
            }),
            ..storm_spec()
        };
        let table = zones(&[0, 0, 0, 1, 1, 1]);
        let a = spec.lower(42, 20_000.0, &table);
        let b = spec.lower(42, 20_000.0, &table);
        assert_eq!(a, b);
        let c = spec.lower(43, 20_000.0, &table);
        assert_ne!(a, c, "a different seed should draw a different plan");
    }

    #[test]
    fn storms_strike_within_single_zones() {
        let table = zones(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let plan = storm_spec().lower(7, 30_000.0, &table);
        assert!(!plan.outages.is_empty());
        // Each storm window's nodes all belong to one zone.
        let mut by_from: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for o in &plan.outages {
            by_from
                .entry(o.from.as_secs() as u64)
                .or_default()
                .push(o.node.raw());
        }
        for (from, nodes) in by_from {
            let zs: Vec<u32> = nodes.iter().map(|&n| table[n as usize].raw()).collect();
            assert!(
                zs.windows(2).all(|w| w[0] == w[1]),
                "storm at {from}s spans zones: nodes {nodes:?}"
            );
            assert_eq!(nodes.len(), 2, "half of a 4-node zone rounds up to 2");
        }
    }

    #[test]
    fn merged_outage_windows_are_disjoint_per_node() {
        let spec = ChaosSpec {
            flaps: Some(FlapSpec {
                nodes: 4,
                first_secs: 0.0,
                period_secs: 1000.0,
                down_secs: 900.0,
            }),
            ..storm_spec()
        };
        let table = zones(&[0; 4]);
        let plan = spec.lower(11, 25_000.0, &table);
        let mut per_node: BTreeMap<u32, Vec<(f64, f64)>> = BTreeMap::new();
        for o in &plan.outages {
            assert!(o.to > o.from);
            per_node
                .entry(o.node.raw())
                .or_default()
                .push((o.from.as_secs(), o.to.as_secs()));
        }
        for (node, mut windows) in per_node {
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in windows.windows(2) {
                assert!(
                    w[0].1 < w[1].0,
                    "node {node}: windows {:?} and {:?} overlap after merging",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn bite_factor_is_deterministic_and_respects_probability_bounds() {
        let spec = OvercommitSpec {
            cpu_ratio: 1.5,
            mem_ratio: 1.0,
            bite_prob: 0.5,
            bite_depth: 0.25,
        };
        let mut bites = 0;
        for cycle in 0..200u64 {
            let f = bite_factor(9, cycle, NodeId::new(3), &spec);
            assert_eq!(f, bite_factor(9, cycle, NodeId::new(3), &spec));
            assert!(f == 1.0 || (f - 0.75).abs() < 1e-12);
            if f < 1.0 {
                bites += 1;
            }
        }
        assert!(
            (50..150).contains(&bites),
            "p=0.5 should bite ~half: {bites}"
        );
        let never = OvercommitSpec {
            bite_prob: 0.0,
            ..spec
        };
        assert_eq!(bite_factor(9, 0, NodeId::new(0), &never), 1.0);
        let always = OvercommitSpec {
            bite_prob: 1.0,
            ..spec
        };
        assert!((bite_factor(9, 0, NodeId::new(0), &always) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let mut spec = storm_spec();
        spec.zone_storms.as_mut().unwrap().node_fraction = 0.0;
        let err = spec.validate(6).unwrap_err();
        assert!(err.contains("node_fraction"), "got {err}");

        let bad = OvercommitSpec {
            cpu_ratio: 0.5,
            mem_ratio: 1.0,
            bite_prob: 0.1,
            bite_depth: 0.2,
        };
        assert!(bad.validate().unwrap_err().contains("cpu_ratio"));

        let bad = ElasticitySpec {
            first_secs: 0.0,
            period_secs: 100.0,
            grow_factor: 0.9,
            shrink_factor: 0.5,
            max_events: 1,
        };
        assert!(bad.validate().unwrap_err().contains("grow_factor"));

        let flaps = ChaosSpec {
            flaps: Some(FlapSpec {
                nodes: 9,
                first_secs: 0.0,
                period_secs: 100.0,
                down_secs: 10.0,
            }),
            ..ChaosSpec::default()
        };
        assert!(flaps.validate(6).unwrap_err().contains("cluster size"));
    }
}
