//! E8: service differentiation — gold jobs (importance 2) vs bronze jobs
//! (importance 1) with identical SLAs on a contended cluster.
//!
//! ```text
//! cargo run --release -p slaq-experiments --bin differentiation
//! ```

use slaq_core::controller::ControllerConfig;
use slaq_core::UtilityController;
use slaq_jobs::JobSpec;
use slaq_sim::{OverheadConfig, SimConfig, Simulator};
use slaq_types::{ClusterSpec, CpuMhz, EntityId, JobId, MemMb, SimDuration, SimTime, Work};
use slaq_utility::CompletionGoal;
use std::collections::BTreeMap;

fn scenario(importance: BTreeMap<EntityId, f64>) -> (Vec<f64>, Vec<f64>) {
    let cluster = ClusterSpec::homogeneous(3, 4, CpuMhz::new(3000.0), MemMb::new(4096));
    let mut sim = Simulator::new(
        &cluster,
        SimConfig {
            control_period: SimDuration::from_secs(600.0),
            horizon: SimTime::from_secs(14_000.0),
            overheads: OverheadConfig::default(),
            cap_transactional: false,
        },
    );
    let arrivals: Vec<(SimTime, JobSpec)> = (0..16)
        .map(|i| {
            let name = if i % 2 == 0 { "gold" } else { "bronze" };
            let submit = SimTime::from_secs(200.0 * f64::from(i));
            (
                submit,
                JobSpec {
                    name: format!("{name}-{i}"),
                    total_work: Work::from_power_secs(CpuMhz::new(3000.0), 2500.0),
                    max_speed: CpuMhz::new(3000.0),
                    mem: MemMb::new(1280),
                    goal: CompletionGoal::relative(
                        submit,
                        SimDuration::from_secs(2500.0),
                        1.25,
                        3.0,
                    )
                    .unwrap(),
                },
            )
        })
        .collect();
    sim.add_arrivals(arrivals);
    let mut controller = UtilityController::new(ControllerConfig {
        importance,
        ..Default::default()
    });
    sim.run(&mut controller).expect("run");
    let mut gold = Vec::new();
    let mut bronze = Vec::new();
    for j in sim.jobs().jobs() {
        let u = j
            .achieved_utility
            .unwrap_or_else(|| j.spec.goal.utility_at(SimTime::NEVER));
        if j.id.raw() % 2 == 0 {
            gold.push(u)
        } else {
            bronze.push(u)
        }
    }
    (gold, bronze)
}

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    println!("E8 — service differentiation (gold importance 2.0, bronze 1.0)\n");
    let mut importance = BTreeMap::new();
    for i in (0..16u32).step_by(2) {
        importance.insert(EntityId::Job(JobId::new(i)), 2.0);
    }
    let (g_w, b_w) = scenario(importance);
    let (g_u, b_u) = scenario(BTreeMap::new());
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "config", "gold mean u", "bronze mean u", "gold - bronze"
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>14.3}",
        "weighted (2:1)",
        mean(&g_w),
        mean(&b_w),
        mean(&g_w) - mean(&b_w)
    );
    println!(
        "{:<22} {:>12.3} {:>12.3} {:>14.3}",
        "unweighted",
        mean(&g_u),
        mean(&b_u),
        mean(&g_u) - mean(&b_u)
    );
    println!(
        "\naggregate utility: weighted {:.3} vs unweighted {:.3} (differentiation \
         redistributes, it does not create)",
        mean(&g_w) + mean(&b_w),
        mean(&g_u) + mean(&b_u)
    );
}
