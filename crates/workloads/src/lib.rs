//! # slaq-workloads — synthetic workload generation
//!
//! Stand-in for the authors' lab load drivers (DESIGN.md §2, S7): seeded,
//! reproducible generators for both workload classes of the paper.
//!
//! * [`RateSchedule`] + [`PoissonArrivals`] — exponential inter-arrival
//!   streams whose mean can change over time. The paper's evaluation
//!   submits 800 identical jobs at a mean spacing of 260 s, with the rate
//!   "slightly decreased" near the end of the experiment.
//! * [`JobTemplate`] / [`generate_job_stream`] — turn an arrival stream
//!   into concrete [`JobSpec`]s with SLAs anchored at each submission.
//! * [`IntensityTrace`] — transactional request-intensity λ(t): constant,
//!   stepped, or diurnal, mirroring the constant transactional load the
//!   experiment applies throughout.
//!
//! Everything is driven by `ChaCha12Rng` with explicit seeds so that every
//! figure regenerates bit-identically.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod intensity;
pub mod jobstream;

pub use arrivals::{PoissonArrivals, RateSchedule};
pub use intensity::IntensityTrace;
pub use jobstream::{generate_job_stream, JobTemplate};
