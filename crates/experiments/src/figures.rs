//! E1/E2: the paper's single experiment, producing Figures 1 and 2.

use slaq_core::scenario::PaperParams;
use slaq_core::{Scenario, UtilityController};
use slaq_sim::SimReport;
use slaq_types::Result;

/// Run the paper's experiment (both figures come from the same run).
pub fn run_paper_experiment(params: &PaperParams) -> Result<SimReport> {
    let scenario: Scenario = params.scenario();
    scenario.run(&mut UtilityController::default())
}

/// Figure 1 CSV: actual transactional utility and average hypothetical
/// long-running utility vs time.
pub fn fig1_csv(report: &SimReport) -> String {
    report
        .metrics
        .to_csv(&["trans_utility", "jobs_hypo_utility"])
}

/// Figure 2 CSV: CPU power allocated to each workload and the demand each
/// would need for maximum utility, vs time.
pub fn fig2_csv(report: &SimReport) -> String {
    report
        .metrics
        .to_csv(&["trans_alloc", "jobs_alloc", "trans_demand", "jobs_demand"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_both_figures() {
        let report = run_paper_experiment(&PaperParams::small()).unwrap();
        let f1 = fig1_csv(&report);
        let f2 = fig2_csv(&report);
        assert!(f1.lines().count() > 20, "fig1 rows: {}", f1.lines().count());
        assert!(f2.lines().count() > 20);
        assert!(f1.starts_with("time,trans_utility,jobs_hypo_utility"));
        assert!(f2.starts_with("time,trans_alloc,jobs_alloc,trans_demand,jobs_demand"));
    }
}
