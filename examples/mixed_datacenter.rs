//! The paper's scenario end to end: constant transactional workload plus
//! a stream of identical long-running jobs on a shared cluster, with the
//! Figure-1 curves rendered in the terminal.
//!
//! ```text
//! cargo run --release --example mixed_datacenter          # full size
//! cargo run --example mixed_datacenter -- --small         # scaled down
//! ```

use slaq::prelude::*;
use slaq_experiments::ascii::{downsample, plot};
use slaq_experiments::{run_paper_experiment, shape_metrics};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let params = if small {
        PaperParams::small()
    } else {
        PaperParams::default()
    };
    println!(
        "paper scenario: {} nodes × {} × {} MHz, λ={} req/s, jobs of {} s at 1 cpu, \
         inter-arrival {} s (tail {} s), horizon {} s",
        params.nodes,
        params.cpus_per_node,
        params.core_mhz,
        params.lambda,
        params.job_work_secs,
        params.mean_interarrival_secs,
        params.tail_interarrival_secs,
        params.horizon_secs,
    );

    let report = run_paper_experiment(&params).unwrap();

    let ut = downsample(report.metrics.series("trans_utility"), 100);
    let uj = downsample(report.metrics.series("jobs_hypo_utility"), 100);
    println!(
        "\n{}",
        plot(
            &[
                ("transactional (actual)", &ut),
                ("long-running (hypothetical)", &uj)
            ],
            100,
            18,
        )
    );

    let shape = shape_metrics(
        &report,
        SimTime::from_secs(params.tail_start_secs),
        SimTime::from_secs(params.horizon_secs),
    );
    println!("{shape}");
    println!(
        "\njobs: {} submitted, {} completed, {} met goals, {} disruptions",
        report.job_stats.submitted,
        report.job_stats.completed,
        report.job_stats.goals_met,
        report.job_stats.disruptions,
    );
}
