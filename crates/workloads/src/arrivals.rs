//! Job arrival processes: Poisson streams with piecewise-constant rate
//! schedules, bursty ON–OFF streams, and periodic batch drops.
//!
//! [`ArrivalProcess`] is the declarative, serde-round-trippable form a
//! scenario spec references; it materializes into a concrete, seeded
//! stream of submission instants via [`ArrivalProcess::stream`].

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use slaq_types::SimTime;

/// A piecewise-constant schedule of *mean inter-arrival times*.
///
/// Segment `i` applies from its start instant until the next segment's
/// start. The paper's stream is `[(0, 260 s), (t_tail, 400 s)]`: a mean
/// spacing of 260 s that is "slightly decreased" (in rate) near the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSchedule {
    segments: Vec<(SimTime, f64)>,
}

impl RateSchedule {
    /// A single constant mean inter-arrival time.
    pub fn constant(mean_interarrival_secs: f64) -> Option<Self> {
        Self::new(vec![(SimTime::ZERO, mean_interarrival_secs)])
    }

    /// Build from `(start, mean_interarrival)` pairs. Requirements: at
    /// least one segment, strictly increasing starts beginning at or
    /// after 0, positive finite means.
    pub fn new(segments: Vec<(SimTime, f64)>) -> Option<Self> {
        if segments.is_empty() {
            return None;
        }
        if segments[0].0.as_secs() < 0.0 {
            return None;
        }
        for w in segments.windows(2) {
            if w[1].0 <= w[0].0 {
                return None;
            }
        }
        if segments.iter().any(|&(_, m)| !(m.is_finite() && m > 0.0)) {
            return None;
        }
        Some(RateSchedule { segments })
    }

    /// Mean inter-arrival time in force at instant `t` (the first
    /// segment's mean before its start).
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let mut mean = self.segments[0].1;
        for &(start, m) in &self.segments {
            if t >= start {
                mean = m;
            } else {
                break;
            }
        }
        mean
    }
}

/// Iterator of arrival instants: exponential inter-arrivals whose mean
/// follows a [`RateSchedule`].
///
/// Each gap is drawn from the segment in force at the *previous* arrival —
/// exact for constant segments and an accepted approximation at segment
/// boundaries (the schedule changes slowly relative to the mean gap).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    schedule: RateSchedule,
    rng: ChaCha12Rng,
    t: SimTime,
    remaining: usize,
}

impl PoissonArrivals {
    /// Stream of at most `count` arrivals starting at time zero.
    pub fn new(schedule: RateSchedule, count: usize, seed: u64) -> Self {
        PoissonArrivals {
            schedule,
            rng: ChaCha12Rng::seed_from_u64(seed),
            t: SimTime::ZERO,
            remaining: count,
        }
    }
}

impl Iterator for PoissonArrivals {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mean = self.schedule.mean_at(self.t);
        // Inverse-transform sampling of Exp(1/mean); guard the log(0) tail.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap = -mean * u.ln();
        self.t += slaq_types::SimDuration::from_secs(gap);
        Some(self.t)
    }
}

/// A declarative arrival process: the shape a scenario spec names, with
/// all parameters data (serde-round-trippable). Materialize with
/// [`ArrivalProcess::stream`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrivals whose mean follows a [`RateSchedule`] —
    /// the paper's stream shape.
    Poisson {
        /// Mean inter-arrival time over time.
        schedule: RateSchedule,
    },
    /// Bursty ON–OFF source: the time axis alternates between an ON phase
    /// of `on_secs` and an OFF phase of `off_secs`. During ON, arrivals
    /// are exponential with mean `on_mean_interarrival_secs`; during OFF
    /// they use `off_mean_interarrival_secs`, or stop entirely when that
    /// is `None` (the stream jumps to the next ON phase).
    OnOff {
        /// Length of each ON phase.
        on_secs: f64,
        /// Length of each OFF phase.
        off_secs: f64,
        /// Mean inter-arrival time during ON phases.
        on_mean_interarrival_secs: f64,
        /// Mean inter-arrival time during OFF phases (`None` = silent).
        off_mean_interarrival_secs: Option<f64>,
    },
    /// Periodic batch drops: `batch_size` jobs submitted simultaneously at
    /// `first_secs`, `first_secs + period_secs`, … — the nightly-batch
    /// shape.
    BatchDrops {
        /// Instant of the first drop.
        first_secs: f64,
        /// Spacing between drops.
        period_secs: f64,
        /// Jobs per drop.
        batch_size: u32,
    },
}

impl ArrivalProcess {
    /// The paper's stream: a constant mean inter-arrival time.
    pub fn poisson_constant(mean_interarrival_secs: f64) -> Option<Self> {
        RateSchedule::constant(mean_interarrival_secs)
            .map(|schedule| ArrivalProcess::Poisson { schedule })
    }

    /// Structural sanity of the process parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalProcess::Poisson { .. } => Ok(()),
            ArrivalProcess::OnOff {
                on_secs,
                off_secs,
                on_mean_interarrival_secs,
                off_mean_interarrival_secs,
            } => {
                if !(on_secs.is_finite() && *on_secs > 0.0) {
                    return Err("ON phase length must be positive".into());
                }
                if !(off_secs.is_finite() && *off_secs >= 0.0) {
                    return Err("OFF phase length must be non-negative".into());
                }
                if !(on_mean_interarrival_secs.is_finite() && *on_mean_interarrival_secs > 0.0) {
                    return Err("ON mean inter-arrival must be positive".into());
                }
                if let Some(m) = off_mean_interarrival_secs {
                    if !(m.is_finite() && *m > 0.0) {
                        return Err("OFF mean inter-arrival must be positive".into());
                    }
                }
                Ok(())
            }
            ArrivalProcess::BatchDrops {
                first_secs,
                period_secs,
                batch_size,
            } => {
                if !(first_secs.is_finite() && *first_secs >= 0.0) {
                    return Err("first drop instant must be non-negative".into());
                }
                if !(period_secs.is_finite() && *period_secs > 0.0) {
                    return Err("drop period must be positive".into());
                }
                if *batch_size == 0 {
                    return Err("batch size must be at least 1".into());
                }
                Ok(())
            }
        }
    }

    /// Materialize at most `count` arrival instants, truncated at
    /// `horizon`, driven by `seed`. Instants are non-decreasing; the same
    /// `(process, count, horizon, seed)` reproduces the stream
    /// bit-identically.
    ///
    /// An invalid process (see [`ArrivalProcess::validate`]) produces an
    /// empty stream: a degenerate ON–OFF shape (zero-length or NaN ON
    /// phase with a silent OFF) would otherwise spin forever looking for
    /// an ON window that never opens. Spec-driven callers surface the
    /// validation error before ever reaching this method.
    pub fn stream(&self, count: usize, horizon: SimTime, seed: u64) -> Vec<SimTime> {
        if self.validate().is_err() {
            return Vec::new();
        }
        match self {
            ArrivalProcess::Poisson { schedule } => {
                PoissonArrivals::new(schedule.clone(), count, seed)
                    .take_while(|&t| t <= horizon)
                    .collect()
            }
            ArrivalProcess::OnOff {
                on_secs,
                off_secs,
                on_mean_interarrival_secs,
                off_mean_interarrival_secs,
            } => {
                let mut rng = ChaCha12Rng::seed_from_u64(seed);
                let cycle = on_secs + off_secs;
                let mut t = 0.0f64;
                let mut out = Vec::with_capacity(count.min(4096));
                while out.len() < count {
                    // Phase in force at the previous arrival decides the
                    // next gap — same approximation as `PoissonArrivals`
                    // at rate-schedule boundaries.
                    let pos = if cycle > 0.0 {
                        t.rem_euclid(cycle)
                    } else {
                        0.0
                    };
                    let mean = if pos < *on_secs {
                        *on_mean_interarrival_secs
                    } else {
                        match off_mean_interarrival_secs {
                            Some(m) => *m,
                            None => {
                                // Silent OFF phase: jump to the next ON
                                // start without consuming randomness.
                                t += cycle - pos;
                                continue;
                            }
                        }
                    };
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t -= mean * u.ln();
                    if t > horizon.as_secs() {
                        break;
                    }
                    out.push(SimTime::from_secs(t));
                }
                out
            }
            ArrivalProcess::BatchDrops {
                first_secs,
                period_secs,
                batch_size,
            } => {
                let mut out = Vec::with_capacity(count.min(4096));
                let mut drop_at = *first_secs;
                'drops: while drop_at <= horizon.as_secs() {
                    for _ in 0..*batch_size {
                        if out.len() >= count {
                            break 'drops;
                        }
                        out.push(SimTime::from_secs(drop_at));
                    }
                    drop_at += period_secs;
                }
                out
            }
        }
    }

    /// Mean arrival *rate* (jobs/s) the process offers at instant `t`,
    /// ignoring count truncation — used by capacity-planning reports.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self {
            ArrivalProcess::Poisson { schedule } => 1.0 / schedule.mean_at(t),
            ArrivalProcess::OnOff {
                on_secs,
                off_secs,
                on_mean_interarrival_secs,
                off_mean_interarrival_secs,
            } => {
                let cycle = on_secs + off_secs;
                let pos = if cycle > 0.0 {
                    t.as_secs().rem_euclid(cycle)
                } else {
                    0.0
                };
                if pos < *on_secs {
                    1.0 / on_mean_interarrival_secs
                } else {
                    off_mean_interarrival_secs.map(|m| 1.0 / m).unwrap_or(0.0)
                }
            }
            ArrivalProcess::BatchDrops {
                period_secs,
                batch_size,
                ..
            } => f64::from(*batch_size) / period_secs,
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_rejects_bad_inputs() {
        assert!(RateSchedule::new(vec![]).is_none());
        assert!(RateSchedule::new(vec![(SimTime::ZERO, 0.0)]).is_none());
        assert!(RateSchedule::new(vec![(SimTime::ZERO, -5.0)]).is_none());
        assert!(RateSchedule::new(vec![
            (SimTime::from_secs(10.0), 1.0),
            (SimTime::from_secs(10.0), 2.0)
        ])
        .is_none());
        assert!(RateSchedule::constant(260.0).is_some());
    }

    #[test]
    fn schedule_lookup_picks_segment_in_force() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 260.0),
            (SimTime::from_secs(55_000.0), 400.0),
        ])
        .unwrap();
        assert_eq!(s.mean_at(SimTime::ZERO), 260.0);
        assert_eq!(s.mean_at(SimTime::from_secs(54_999.0)), 260.0);
        assert_eq!(s.mean_at(SimTime::from_secs(55_000.0)), 400.0);
        assert_eq!(s.mean_at(SimTime::from_secs(70_000.0)), 400.0);
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_bounded_in_count() {
        let s = RateSchedule::constant(260.0).unwrap();
        let times: Vec<SimTime> = PoissonArrivals::new(s, 100, 42).collect();
        assert_eq!(times.len(), 100);
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn same_seed_reproduces_same_stream() {
        let s = RateSchedule::constant(100.0).unwrap();
        let a: Vec<SimTime> = PoissonArrivals::new(s.clone(), 50, 7).collect();
        let b: Vec<SimTime> = PoissonArrivals::new(s, 50, 7).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let s = RateSchedule::constant(100.0).unwrap();
        let a: Vec<SimTime> = PoissonArrivals::new(s.clone(), 50, 7).collect();
        let b: Vec<SimTime> = PoissonArrivals::new(s, 50, 8).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn empirical_mean_matches_schedule() {
        let s = RateSchedule::constant(260.0).unwrap();
        let times: Vec<f64> = PoissonArrivals::new(s, 5000, 123)
            .map(SimTime::as_secs)
            .collect();
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!(
            (mean_gap - 260.0).abs() < 15.0,
            "empirical mean gap {mean_gap} should be near 260"
        );
    }

    #[test]
    fn rate_slowdown_spreads_the_tail() {
        let s = RateSchedule::new(vec![
            (SimTime::ZERO, 10.0),
            (SimTime::from_secs(1000.0), 1000.0),
        ])
        .unwrap();
        let times: Vec<f64> = PoissonArrivals::new(s, 200, 9)
            .map(SimTime::as_secs)
            .collect();
        let before = times.iter().filter(|&&t| t < 1000.0).count();
        // ~100 arrivals in the fast phase, then a crawl.
        assert!(before > 60, "fast phase arrivals: {before}");
        let after: Vec<&f64> = times.iter().filter(|&&t| t >= 1000.0).collect();
        if after.len() >= 2 {
            let gaps: f64 =
                after.windows(2).map(|w| *w[1] - *w[0]).sum::<f64>() / (after.len() - 1) as f64;
            assert!(gaps > 100.0, "tail gaps should widen: {gaps}");
        }
    }

    #[test]
    fn onoff_silent_off_phase_has_no_arrivals() {
        let p = ArrivalProcess::OnOff {
            on_secs: 100.0,
            off_secs: 900.0,
            on_mean_interarrival_secs: 5.0,
            off_mean_interarrival_secs: None,
        };
        assert!(p.validate().is_ok());
        let times = p.stream(500, SimTime::from_secs(10_000.0), 3);
        assert!(!times.is_empty());
        for t in &times {
            let pos = t.as_secs().rem_euclid(1000.0);
            // Every arrival was *drawn* inside an ON window (the gap may
            // overshoot slightly past the boundary, like the Poisson
            // schedule approximation; allow one mean of slack).
            assert!(pos <= 100.0 + 5.0 * 4.0, "arrival at phase {pos}");
        }
        // Bursts: consecutive arrivals cluster, with ≥ ~900 s canyons.
        let canyons = times
            .windows(2)
            .filter(|w| w[1].as_secs() - w[0].as_secs() > 800.0)
            .count();
        assert!(canyons >= 3, "expected OFF canyons, got {canyons}");
    }

    #[test]
    fn onoff_with_slow_off_rate_keeps_trickling() {
        let p = ArrivalProcess::OnOff {
            on_secs: 100.0,
            off_secs: 400.0,
            on_mean_interarrival_secs: 5.0,
            off_mean_interarrival_secs: Some(200.0),
        };
        let times = p.stream(400, SimTime::from_secs(5000.0), 9);
        let in_off = times
            .iter()
            .filter(|t| t.as_secs().rem_euclid(500.0) > 100.0)
            .count();
        assert!(in_off > 0, "OFF phase should still trickle");
    }

    #[test]
    fn batch_drops_land_in_lockstep() {
        let p = ArrivalProcess::BatchDrops {
            first_secs: 1000.0,
            period_secs: 2000.0,
            batch_size: 5,
        };
        assert!(p.validate().is_ok());
        let times = p.stream(100, SimTime::from_secs(6000.0), 42);
        // Drops at 1000/3000/5000 × 5 jobs.
        assert_eq!(times.len(), 15);
        assert!(times[..5].iter().all(|t| t.as_secs() == 1000.0));
        assert!(times[5..10].iter().all(|t| t.as_secs() == 3000.0));
        // Count cap truncates mid-drop.
        assert_eq!(p.stream(7, SimTime::from_secs(6000.0), 42).len(), 7);
    }

    #[test]
    fn process_validation_rejects_nonsense() {
        assert!(ArrivalProcess::OnOff {
            on_secs: 0.0,
            off_secs: 10.0,
            on_mean_interarrival_secs: 1.0,
            off_mean_interarrival_secs: None,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::OnOff {
            on_secs: 10.0,
            off_secs: 10.0,
            on_mean_interarrival_secs: 1.0,
            off_mean_interarrival_secs: Some(0.0),
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::BatchDrops {
            first_secs: 0.0,
            period_secs: 0.0,
            batch_size: 1,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::BatchDrops {
            first_secs: 0.0,
            period_secs: 60.0,
            batch_size: 0,
        }
        .validate()
        .is_err());
    }

    #[test]
    fn degenerate_processes_stream_empty_instead_of_hanging() {
        // A zero-length ON phase with a silent OFF has no window to ever
        // emit from; stream() must refuse rather than spin forever.
        let p = ArrivalProcess::OnOff {
            on_secs: 0.0,
            off_secs: 10.0,
            on_mean_interarrival_secs: 1.0,
            off_mean_interarrival_secs: None,
        };
        assert!(p.stream(10, SimTime::from_secs(1000.0), 1).is_empty());
        let p = ArrivalProcess::OnOff {
            on_secs: f64::NAN,
            off_secs: 10.0,
            on_mean_interarrival_secs: 1.0,
            off_mean_interarrival_secs: None,
        };
        assert!(p.stream(10, SimTime::from_secs(1000.0), 1).is_empty());
    }

    #[test]
    fn poisson_process_matches_raw_iterator() {
        let schedule = RateSchedule::constant(100.0).unwrap();
        let via_process = ArrivalProcess::Poisson {
            schedule: schedule.clone(),
        }
        .stream(50, SimTime::from_secs(1e9), 7);
        let via_iter: Vec<SimTime> = PoissonArrivals::new(schedule, 50, 7).collect();
        assert_eq!(via_process, via_iter);
    }

    fn all_processes() -> Vec<ArrivalProcess> {
        vec![
            ArrivalProcess::Poisson {
                schedule: RateSchedule::new(vec![
                    (SimTime::ZERO, 50.0),
                    (SimTime::from_secs(2000.0), 200.0),
                ])
                .unwrap(),
            },
            ArrivalProcess::OnOff {
                on_secs: 300.0,
                off_secs: 700.0,
                on_mean_interarrival_secs: 10.0,
                off_mean_interarrival_secs: None,
            },
            ArrivalProcess::OnOff {
                on_secs: 300.0,
                off_secs: 700.0,
                on_mean_interarrival_secs: 10.0,
                off_mean_interarrival_secs: Some(300.0),
            },
            ArrivalProcess::BatchDrops {
                first_secs: 500.0,
                period_secs: 1500.0,
                batch_size: 4,
            },
        ]
    }

    proptest! {
        #[test]
        fn prop_counts_and_monotonicity(
            mean in 1.0..1000.0f64,
            count in 0usize..200,
            seed in 0u64..1000,
        ) {
            let s = RateSchedule::constant(mean).unwrap();
            let times: Vec<SimTime> = PoissonArrivals::new(s, count, seed).collect();
            prop_assert_eq!(times.len(), count);
            for w in times.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            if let Some(first) = times.first() {
                prop_assert!(first.as_secs() > 0.0);
            }
        }

        /// Generator determinism: every named process, same seed ⇒
        /// bit-identical stream; streams stay sorted and bounded.
        #[test]
        fn prop_every_process_is_deterministic(
            count in 1usize..150,
            seed in 0u64..500,
            horizon in 1000.0..20_000.0f64,
        ) {
            for p in all_processes() {
                let h = SimTime::from_secs(horizon);
                let a = p.stream(count, h, seed);
                let b = p.stream(count, h, seed);
                prop_assert_eq!(&a, &b, "process {:?} not reproducible", p);
                prop_assert!(a.len() <= count);
                for w in a.windows(2) {
                    prop_assert!(w[1] >= w[0]);
                }
                for t in &a {
                    prop_assert!(*t <= h);
                }
            }
        }
    }
}
