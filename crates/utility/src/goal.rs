//! SLA goal vocabulary: completion-time goals for long-running jobs and
//! response-time goals for transactional applications.
//!
//! Both goal types compile to a monotone [`PiecewiseLinear`] utility curve,
//! making the two workload classes' performance *comparable* — the paper's
//! key trick for trading off resources between them.

use crate::curve::PiecewiseLinear;
use crate::{U_MAX, U_MIN};
use serde::{Deserialize, Serialize};
use slaq_types::{SimDuration, SimTime};

/// Completion-time SLA for a long-running job.
///
/// Utility as a function of the (actual or projected) completion time `t`:
///
/// ```text
/// u(t) = max_utility                     for t ≤ earliest
///        linear: max_utility→goal_utility for earliest < t ≤ goal
///        linear: goal_utility→min_utility for goal < t ≤ exhausted
///        min_utility                     for t > exhausted
/// ```
///
/// "The actual utility achieved by a job can only be calculated at
/// completion time (as a function of actual completion time and the
/// objective completion time)" — this struct is that function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletionGoal {
    /// Completion instant at (or before) which utility is maximal —
    /// typically the job's fastest possible finish.
    pub earliest: SimTime,
    /// The SLA objective completion time.
    pub goal: SimTime,
    /// Instant past which utility bottoms out at `min_utility`.
    pub exhausted: SimTime,
    /// Utility for finishing at or before `earliest` (defaults to 1.0).
    pub max_utility: f64,
    /// Utility for finishing exactly at `goal` (defaults to 0.5).
    pub goal_utility: f64,
    /// Utility floor (defaults to 0.0).
    pub min_utility: f64,
}

impl CompletionGoal {
    /// Standard goal shape used throughout the experiments: utility 1.0 up
    /// to the fastest finish, 0.5 at the goal, 0.0 at `exhausted`.
    pub fn new(earliest: SimTime, goal: SimTime, exhausted: SimTime) -> Option<Self> {
        let g = CompletionGoal {
            earliest,
            goal,
            exhausted,
            max_utility: U_MAX,
            goal_utility: 0.5,
            min_utility: 0.0,
        };
        g.validate().then_some(g)
    }

    /// Goal relative to a submission: fastest finish after `fastest` work
    /// time, goal at `goal_factor × fastest`, exhausted at
    /// `exhausted_factor × fastest` (factors ≥ 1, exhausted ≥ goal).
    ///
    /// This is how the evaluation derives per-job SLAs for the 800
    /// identical jobs: identical *relative* goals anchored at each job's
    /// submission time.
    pub fn relative(
        submit: SimTime,
        fastest: SimDuration,
        goal_factor: f64,
        exhausted_factor: f64,
    ) -> Option<Self> {
        if !(goal_factor >= 1.0 && exhausted_factor >= goal_factor) {
            return None;
        }
        Self::new(
            submit + fastest,
            submit + fastest * goal_factor,
            submit + fastest * exhausted_factor,
        )
    }

    fn validate(&self) -> bool {
        self.earliest.as_secs().is_finite()
            && self.goal.as_secs().is_finite()
            && self.exhausted.as_secs().is_finite()
            && self.earliest <= self.goal
            && self.goal <= self.exhausted
            && self.max_utility >= self.goal_utility
            && self.goal_utility >= self.min_utility
            && self.max_utility <= U_MAX
            && self.min_utility >= U_MIN
    }

    /// Utility of completing at instant `t`.
    pub fn utility_at(&self, t: SimTime) -> f64 {
        if t.is_never() {
            return self.min_utility;
        }
        self.curve().eval(t.as_secs())
    }

    /// The full (non-increasing) utility-of-completion-time curve.
    pub fn curve(&self) -> PiecewiseLinear {
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(3);
        let mut push = |x: f64, y: f64| {
            // Coincident breakpoints (e.g. earliest == goal) encode a step;
            // nudge by a microsecond to keep the curve a function while
            // preserving both utility levels.
            let x = match pts.last() {
                Some(&(px, _)) if x <= px => px + 1e-6,
                _ => x,
            };
            pts.push((x, y));
        };
        push(self.earliest.as_secs(), self.max_utility);
        push(self.goal.as_secs(), self.goal_utility);
        push(self.exhausted.as_secs(), self.min_utility);
        PiecewiseLinear::new(pts).expect("CompletionGoal invariants guarantee a monotone curve")
    }

    /// Latest completion instant that still yields utility ≥ `u`
    /// ([`SimTime::NEVER`] if every completion does).
    pub fn latest_for_utility(&self, u: f64) -> SimTime {
        if u <= self.min_utility {
            return SimTime::NEVER;
        }
        match self.curve().inverse_max_x(u) {
            Some(x) => SimTime::from_secs(x),
            None => self.earliest, // u above max: only "impossible" — report earliest
        }
    }
}

/// Response-time SLA for a transactional application.
///
/// Utility of observed (or predicted) mean response time `rt`:
/// `u = (τ − rt) / τ`, clipped to `[U_MIN, U_MAX]` — the linear
/// normalized-distance-to-goal form used by the authors' transactional
/// framework (NOMS'08, reference \[2\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseTimeGoal {
    /// The response-time objective τ.
    pub target: SimDuration,
}

impl ResponseTimeGoal {
    /// Create a goal; `target` must be positive and finite.
    pub fn new(target: SimDuration) -> Option<Self> {
        (target.as_secs() > 0.0 && target.as_secs().is_finite())
            .then_some(ResponseTimeGoal { target })
    }

    /// Utility of a response time.
    pub fn utility_of_rt(&self, rt: SimDuration) -> f64 {
        let tau = self.target.as_secs();
        if rt.is_infinite() {
            return U_MIN;
        }
        ((tau - rt.as_secs()) / tau).clamp(U_MIN, U_MAX)
    }

    /// The (non-increasing) utility-of-response-time curve, tabulated on
    /// `[0, 2τ]` (utility is `U_MIN` beyond `2τ` by clipping).
    pub fn curve(&self) -> PiecewiseLinear {
        let tau = self.target.as_secs();
        PiecewiseLinear::new(vec![(0.0, U_MAX), (2.0 * tau, U_MIN)])
            .expect("two distinct x, decreasing y")
    }

    /// Largest response time with utility ≥ `u`.
    pub fn rt_for_utility(&self, u: f64) -> SimDuration {
        if u <= U_MIN {
            return SimDuration::INFINITE;
        }
        let u = u.min(U_MAX);
        SimDuration::from_secs(self.target.as_secs() * (1.0 - u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn goal() -> CompletionGoal {
        CompletionGoal::new(
            SimTime::from_secs(1000.0),
            SimTime::from_secs(2000.0),
            SimTime::from_secs(4000.0),
        )
        .unwrap()
    }

    #[test]
    fn completion_goal_shape() {
        let g = goal();
        assert_eq!(g.utility_at(SimTime::from_secs(0.0)), 1.0);
        assert_eq!(g.utility_at(SimTime::from_secs(1000.0)), 1.0);
        assert_eq!(g.utility_at(SimTime::from_secs(1500.0)), 0.75);
        assert_eq!(g.utility_at(SimTime::from_secs(2000.0)), 0.5);
        assert_eq!(g.utility_at(SimTime::from_secs(3000.0)), 0.25);
        assert_eq!(g.utility_at(SimTime::from_secs(4000.0)), 0.0);
        assert_eq!(g.utility_at(SimTime::from_secs(9e9)), 0.0);
        assert_eq!(g.utility_at(SimTime::NEVER), 0.0);
    }

    #[test]
    fn completion_goal_rejects_disordered_times() {
        assert!(CompletionGoal::new(
            SimTime::from_secs(2000.0),
            SimTime::from_secs(1000.0),
            SimTime::from_secs(4000.0),
        )
        .is_none());
        assert!(CompletionGoal::new(
            SimTime::from_secs(1000.0),
            SimTime::from_secs(2000.0),
            SimTime::from_secs(1500.0),
        )
        .is_none());
    }

    #[test]
    fn relative_goal_anchors_at_submission() {
        let g = CompletionGoal::relative(
            SimTime::from_secs(500.0),
            SimDuration::from_secs(14_400.0),
            1.25,
            2.0,
        )
        .unwrap();
        assert_eq!(g.earliest.as_secs(), 500.0 + 14_400.0);
        assert_eq!(g.goal.as_secs(), 500.0 + 18_000.0);
        assert_eq!(g.exhausted.as_secs(), 500.0 + 28_800.0);
        assert!(CompletionGoal::relative(
            SimTime::ZERO,
            SimDuration::from_secs(100.0),
            0.9, // goal before fastest finish: invalid
            2.0
        )
        .is_none());
    }

    #[test]
    fn degenerate_goal_with_coincident_breakpoints() {
        // earliest == goal: utility drops straight from max at the goal.
        let g = CompletionGoal::new(
            SimTime::from_secs(100.0),
            SimTime::from_secs(100.0),
            SimTime::from_secs(200.0),
        )
        .unwrap();
        assert_eq!(g.utility_at(SimTime::from_secs(99.0)), 1.0);
        assert!((g.utility_at(SimTime::from_secs(150.0)) - 0.25).abs() < 1e-6);
        assert_eq!(g.utility_at(SimTime::from_secs(200.0)), 0.0);
        // All three coincident: a step function collapses to a constant.
        let g2 = CompletionGoal::new(
            SimTime::from_secs(100.0),
            SimTime::from_secs(100.0),
            SimTime::from_secs(100.0),
        )
        .unwrap();
        assert_eq!(g2.utility_at(SimTime::from_secs(50.0)), 1.0);
    }

    #[test]
    fn latest_for_utility_inverts_the_curve() {
        let g = goal();
        assert_eq!(g.latest_for_utility(1.0).as_secs(), 1000.0);
        assert_eq!(g.latest_for_utility(0.5).as_secs(), 2000.0);
        assert_eq!(g.latest_for_utility(0.25).as_secs(), 3000.0);
        assert!(g.latest_for_utility(0.0).is_never());
        assert!(g.latest_for_utility(-0.5).is_never());
    }

    #[test]
    fn response_time_goal_utility() {
        let g = ResponseTimeGoal::new(SimDuration::from_secs(1.0)).unwrap();
        assert_eq!(g.utility_of_rt(SimDuration::ZERO), 1.0);
        assert_eq!(g.utility_of_rt(SimDuration::from_secs(0.5)), 0.5);
        assert_eq!(g.utility_of_rt(SimDuration::from_secs(1.0)), 0.0);
        assert_eq!(g.utility_of_rt(SimDuration::from_secs(2.0)), -1.0);
        assert_eq!(g.utility_of_rt(SimDuration::from_secs(50.0)), -1.0);
        assert_eq!(g.utility_of_rt(SimDuration::INFINITE), -1.0);
    }

    #[test]
    fn response_time_goal_rejects_nonpositive_target() {
        assert!(ResponseTimeGoal::new(SimDuration::ZERO).is_none());
        assert!(ResponseTimeGoal::new(SimDuration::from_secs(1.0)).is_some());
    }

    #[test]
    fn rt_for_utility_inverts() {
        let g = ResponseTimeGoal::new(SimDuration::from_secs(2.0)).unwrap();
        assert_eq!(g.rt_for_utility(1.0).as_secs(), 0.0);
        assert_eq!(g.rt_for_utility(0.0).as_secs(), 2.0);
        assert_eq!(g.rt_for_utility(0.5).as_secs(), 1.0);
        assert!(g.rt_for_utility(-1.0).is_infinite());
    }

    #[test]
    fn rt_goal_curve_matches_closed_form() {
        let g = ResponseTimeGoal::new(SimDuration::from_secs(1.5)).unwrap();
        let c = g.curve();
        for rt in [0.0, 0.3, 1.0, 1.5, 2.9, 3.0, 10.0] {
            let direct = g.utility_of_rt(SimDuration::from_secs(rt));
            assert!(
                (c.eval(rt) - direct).abs() < 1e-12,
                "rt={rt}: curve {} vs direct {direct}",
                c.eval(rt)
            );
        }
    }

    proptest! {
        #[test]
        fn prop_completion_utility_monotone_noninc(
            t1 in 0.0..1e6f64, t2 in 0.0..1e6f64,
        ) {
            let g = goal();
            let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            prop_assert!(
                g.utility_at(SimTime::from_secs(lo)) >= g.utility_at(SimTime::from_secs(hi)) - 1e-12
            );
        }

        #[test]
        fn prop_latest_for_utility_roundtrip(u in 0.01..1.0f64) {
            let g = goal();
            let t = g.latest_for_utility(u);
            prop_assert!(!t.is_never());
            prop_assert!((g.utility_at(t) - u).abs() < 1e-9);
        }

        #[test]
        fn prop_rt_utility_bounded(rt in 0.0..1e4f64, tau in 0.001..1e3f64) {
            let g = ResponseTimeGoal::new(SimDuration::from_secs(tau)).unwrap();
            let u = g.utility_of_rt(SimDuration::from_secs(rt));
            prop_assert!((-1.0..=1.0).contains(&u));
        }
    }
}
