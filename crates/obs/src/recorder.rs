//! The [`Recorder`] handle: interned-key spans, counters, and
//! histograms behind a zero-cost-when-off enum.
//!
//! A `Recorder` is either `Off` (the default — every call is a single
//! branch on the discriminant and returns immediately) or `On`, holding
//! an `Arc` to a mutex-guarded registry. Handles clone cheaply, so each
//! component keeps its own copy plus a small struct of pre-interned
//! [`Key`]s; the hot path never touches a string.
//!
//! Spans nest per thread: opening a span pushes a frame on the calling
//! thread's stack, closing it pops the frame, charges the duration to
//! the parent frame's child time, and folds the sample into the span's
//! aggregate (count / total / self / max / log-bucket histogram).
//! Completed spans are also appended to a bounded trace-event buffer
//! for Chrome-trace export; once the cap is hit, further events are
//! counted as dropped rather than grown without bound.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

use crate::audit::{AuditEntry, AuditSubject, AUDIT_CAP};
use crate::hist::Histogram;
use crate::slo::{Attribution, SloSample, SloSpec, SloTracker};

/// Upper bound on buffered trace events (spans + instants). Beyond
/// this the registry counts drops instead of allocating.
const EVENT_CAP: usize = 1_000_000;

/// An interned metric/span name. Obtained from [`Recorder::key`] at
/// setup time; recording through a `Key` never touches a string.
///
/// Keys are only meaningful for the recorder that interned them. The
/// `Default` key is the dummy a disabled recorder hands out — valid to
/// pass into any recording call (a no-op on a disabled recorder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Key(u32);

/// Handle to one registered per-app SLO tracker, returned by
/// [`Recorder::slo_register`]. Like [`Key`], the dummy a disabled
/// recorder hands out is valid to pass back in (a no-op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloId(u32);

/// Aggregate statistics for one span name.
#[derive(Clone, Debug)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall-clock time across all completions, in microseconds.
    pub total_us: u64,
    /// Total time minus time spent in child spans, in microseconds.
    pub self_us: u64,
    /// Longest single completion, in microseconds.
    pub max_us: u64,
    /// Log-bucket histogram of per-completion durations (µs).
    pub hist: Histogram,
}

impl SpanStats {
    fn new() -> Self {
        SpanStats {
            count: 0,
            total_us: 0,
            self_us: 0,
            max_us: 0,
            hist: Histogram::new(),
        }
    }
}

/// One buffered trace event, exported as Chrome trace-event JSON.
#[derive(Clone, Debug)]
pub(crate) struct TraceEvent {
    pub key: u32,
    pub tid: u32,
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// Duration for complete ("X") events; `None` for instants ("i").
    pub dur_us: Option<u64>,
    /// Pre-rendered JSON `args` object for instant events.
    pub args: Option<String>,
}

/// An open span frame on a thread's stack.
struct OpenSpan {
    key: u32,
    start: Instant,
    child_us: u64,
}

pub(crate) struct Registry {
    names: Vec<String>,
    by_name: BTreeMap<String, u32>,
    counters: Vec<u64>,
    hists: Vec<Histogram>,
    spans: Vec<SpanStats>,
    pub(crate) events: Vec<TraceEvent>,
    dropped_events: u64,
    stacks: HashMap<ThreadId, Vec<OpenSpan>>,
    tids: HashMap<ThreadId, u32>,
    /// Placement decision audit ring (bounded at [`AUDIT_CAP`]).
    pub(crate) audit: Vec<AuditEntry>,
    pub(crate) audit_dropped: u64,
    /// Control cycle stamped onto incoming audit entries.
    audit_cycle: u64,
    /// Per-app SLO trackers, in registration order.
    pub(crate) slos: Vec<(String, SloTracker)>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            names: Vec::new(),
            by_name: BTreeMap::new(),
            counters: Vec::new(),
            hists: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            stacks: HashMap::new(),
            tids: HashMap::new(),
            audit: Vec::new(),
            audit_dropped: 0,
            audit_cycle: 0,
            slos: Vec::new(),
        }
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&ix) = self.by_name.get(name) {
            return ix;
        }
        let ix = self.names.len() as u32;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), ix);
        self.counters.push(0);
        self.hists.push(Histogram::new());
        self.spans.push(SpanStats::new());
        ix
    }

    fn tid_index(&mut self, tid: ThreadId) -> u32 {
        let next = self.tids.len() as u32;
        *self.tids.entry(tid).or_insert(next)
    }

    fn push_event(&mut self, ev: TraceEvent) {
        if self.events.len() < EVENT_CAP {
            self.events.push(ev);
        } else {
            self.dropped_events += 1;
        }
    }

    pub(crate) fn name(&self, key: u32) -> &str {
        &self.names[key as usize]
    }

    pub(crate) fn sorted_names(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect()
    }

    pub(crate) fn span_by_name(&self, name: &str) -> Option<SpanStats> {
        let ix = *self.by_name.get(name)?;
        let st = &self.spans[ix as usize];
        if st.count == 0 {
            None
        } else {
            Some(st.clone())
        }
    }

    pub(crate) fn counter_by_name(&self, name: &str) -> u64 {
        self.by_name
            .get(name)
            .map(|&ix| self.counters[ix as usize])
            .unwrap_or(0)
    }

    pub(crate) fn hist_by_name(&self, name: &str) -> Option<Histogram> {
        let ix = *self.by_name.get(name)?;
        let h = &self.hists[ix as usize];
        if h.count() == 0 {
            None
        } else {
            Some(h.clone())
        }
    }
}

pub(crate) struct Shared {
    pub(crate) registry: Mutex<Registry>,
    /// Echo instant events (from [`Recorder::emit`]) to stderr — the
    /// `SLAQ_TRACE` behaviour.
    echo: bool,
    pub(crate) epoch: Instant,
}

impl Shared {
    pub(crate) fn lock(&self) -> MutexGuard<'_, Registry> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle to the instrumentation plane. `Off` (the default) makes
/// every operation a no-op behind one branch; `On` records into a
/// shared registry. Clone freely — clones share the registry.
#[derive(Clone, Default)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// The disabled recorder: every call is a no-op.
    pub fn off() -> Self {
        Recorder { shared: None }
    }

    /// A live recorder with a fresh registry.
    pub fn enabled() -> Self {
        Recorder::with_echo(false)
    }

    /// A live recorder that additionally echoes [`Recorder::emit`]
    /// events to stderr (the `SLAQ_TRACE` sink).
    pub fn with_echo(echo: bool) -> Self {
        Recorder {
            shared: Some(Arc::new(Shared {
                registry: Mutex::new(Registry::new()),
                echo,
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Intern `name`, returning a [`Key`] for string-free recording.
    /// On a disabled recorder this returns a dummy key (valid to pass
    /// back in — every consumer is a no-op).
    pub fn key(&self, name: &str) -> Key {
        match &self.shared {
            None => Key(0),
            Some(s) => Key(s.lock().intern(name)),
        }
    }

    /// Open a span; the returned guard closes it on drop. Nesting is
    /// per thread: time spent in inner spans is subtracted from the
    /// outer span's self-time.
    #[inline]
    pub fn span(&self, key: Key) -> SpanGuard {
        match &self.shared {
            None => SpanGuard { shared: None },
            Some(s) => {
                let start = Instant::now();
                let mut reg = s.lock();
                let tid = std::thread::current().id();
                reg.stacks.entry(tid).or_default().push(OpenSpan {
                    key: key.0,
                    start,
                    child_us: 0,
                });
                SpanGuard {
                    shared: Some(Arc::clone(s)),
                }
            }
        }
    }

    /// Add `n` to the counter behind `key`.
    #[inline]
    pub fn count(&self, key: Key, n: u64) {
        if let Some(s) = &self.shared {
            s.lock().counters[key.0 as usize] += n;
        }
    }

    /// Record one sample into the histogram behind `key`.
    #[inline]
    pub fn observe(&self, key: Key, value: u64) {
        if let Some(s) = &self.shared {
            s.lock().hists[key.0 as usize].record(value);
        }
    }

    /// Record a structured instant event (Chrome trace phase `"i"`)
    /// with numeric fields; echoed to stderr when the recorder was
    /// built [`Recorder::with_echo`]. This is the structured
    /// replacement for ad-hoc `eprintln!` tracing.
    pub fn emit(&self, key: Key, fields: &[(&str, f64)]) {
        let Some(s) = &self.shared else { return };
        let ts_us = s.epoch.elapsed().as_micros() as u64;
        let mut args = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            args.push('"');
            args.push_str(k);
            args.push_str("\":");
            args.push_str(&fmt_f64(*v));
        }
        args.push('}');
        let mut reg = s.lock();
        if s.echo {
            let name = reg.name(key.0).to_string();
            let line: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{k}={}", fmt_f64(*v)))
                .collect();
            eprintln!("[obs {:>10}us] {} {}", ts_us, name, line.join(" "));
        }
        let tid = std::thread::current().id();
        let tid = reg.tid_index(tid);
        reg.push_event(TraceEvent {
            key: key.0,
            tid,
            ts_us,
            dur_us: None,
            args: Some(args),
        });
    }

    /// Counter value behind `name`, or 0 when absent/disabled.
    pub fn counter_value(&self, name: &str) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => {
                let reg = s.lock();
                reg.by_name
                    .get(name)
                    .map(|&ix| reg.counters[ix as usize])
                    .unwrap_or(0)
            }
        }
    }

    /// Snapshot of the histogram behind `name`, if any samples exist.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let s = self.shared.as_ref()?;
        let reg = s.lock();
        let ix = *reg.by_name.get(name)?;
        let h = &reg.hists[ix as usize];
        if h.count() == 0 {
            None
        } else {
            Some(h.clone())
        }
    }

    /// Snapshot of the aggregate stats for span `name`, if it ever
    /// completed.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        let s = self.shared.as_ref()?;
        let reg = s.lock();
        let ix = *reg.by_name.get(name)?;
        let st = &reg.spans[ix as usize];
        if st.count == 0 {
            None
        } else {
            Some(st.clone())
        }
    }

    /// All interned names, sorted.
    pub fn names(&self) -> Vec<String> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.lock().by_name.keys().cloned().collect(),
        }
    }

    /// Number of trace events dropped after the buffer cap was hit.
    pub fn dropped_events(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => s.lock().dropped_events,
        }
    }

    /// Stamp the control cycle onto subsequent [`Recorder::audit`]
    /// entries. The simulator calls this at the top of every control
    /// cycle, before routing/sensing, so decisions made anywhere in the
    /// cycle tag correctly.
    #[inline]
    pub fn audit_begin_cycle(&self, cycle: u64) {
        if let Some(s) = &self.shared {
            s.lock().audit_cycle = cycle;
        }
    }

    /// Append one placement decision to the audit ring, stamped with
    /// the current cycle. Beyond [`AUDIT_CAP`] entries the call counts
    /// a drop instead of growing the ring.
    #[inline]
    pub fn audit(
        &self,
        subject: AuditSubject,
        from: Option<u32>,
        to: Option<u32>,
        step: &'static str,
        reason: &'static str,
    ) {
        if let Some(s) = &self.shared {
            let mut reg = s.lock();
            if reg.audit.len() < AUDIT_CAP {
                let cycle = reg.audit_cycle;
                reg.audit.push(AuditEntry {
                    cycle,
                    subject,
                    from,
                    to,
                    step,
                    reason,
                });
            } else {
                reg.audit_dropped += 1;
            }
        }
    }

    /// Snapshot of the audit ring, in commit order.
    pub fn audit_entries(&self) -> Vec<AuditEntry> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.lock().audit.clone(),
        }
    }

    /// Audit entries dropped after the ring cap was hit.
    pub fn audit_dropped(&self) -> u64 {
        match &self.shared {
            None => 0,
            Some(s) => s.lock().audit_dropped,
        }
    }

    /// Register a per-app SLO tracker under `name` (the app's display
    /// name); returns the handle to feed samples through. Re-registering
    /// a name returns the existing tracker's handle.
    pub fn slo_register(&self, name: &str, spec: SloSpec) -> SloId {
        match &self.shared {
            None => SloId(0),
            Some(s) => {
                let mut reg = s.lock();
                if let Some(ix) = reg.slos.iter().position(|(n, _)| n == name) {
                    return SloId(ix as u32);
                }
                let ix = reg.slos.len() as u32;
                reg.slos.push((name.to_string(), SloTracker::new(spec)));
                SloId(ix)
            }
        }
    }

    /// Fold one cycle's SLO sample and deficit attribution into the
    /// tracker behind `id`.
    #[inline]
    pub fn slo_observe(&self, id: SloId, sample: &SloSample, attr: &Attribution) {
        if let Some(s) = &self.shared {
            if let Some((_, tracker)) = s.lock().slos.get_mut(id.0 as usize) {
                tracker.observe(sample, attr);
            }
        }
    }

    /// Snapshot of the per-app SLO board, in registration order.
    pub fn slo_board(&self) -> Vec<(String, SloTracker)> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.lock().slos.clone(),
        }
    }

    /// Capture the current counters, value histograms, and span-duration
    /// histograms by name. Two snapshots taken around a stretch of work
    /// diff into that stretch's activity via
    /// [`ObsSnapshot::delta_since`] — the read-and-diff surface for
    /// per-cycle rates without registry access.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut snap = ObsSnapshot::default();
        if let Some(s) = &self.shared {
            let reg = s.lock();
            for (name, &ix) in &reg.by_name {
                let ix = ix as usize;
                snap.counters.insert(name.clone(), reg.counters[ix]);
                if reg.hists[ix].count() > 0 {
                    snap.hists.insert(name.clone(), reg.hists[ix].clone());
                }
                if reg.spans[ix].count > 0 {
                    snap.spans.insert(name.clone(), reg.spans[ix].hist.clone());
                }
            }
        }
        snap
    }

    /// Visit per-span aggregates, counters, and histograms. Used by the
    /// export formatters in [`crate::report`].
    pub(crate) fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> Option<R> {
        self.shared.as_ref().map(|s| f(&s.lock()))
    }
}

/// Closes its span on drop. Hold it in a local (`let _span = …`) for
/// the duration of the phase being timed; guards must drop in LIFO
/// order per thread (ordinary scoping guarantees this).
pub struct SpanGuard {
    shared: Option<Arc<Shared>>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.shared.take() else { return };
        let end = Instant::now();
        let mut reg = s.lock();
        let tid = std::thread::current().id();
        let Some(stack) = reg.stacks.get_mut(&tid) else {
            return;
        };
        let Some(frame) = stack.pop() else { return };
        let dur_us = end.duration_since(frame.start).as_micros() as u64;
        let self_us = dur_us.saturating_sub(frame.child_us);
        if let Some(parent) = stack.last_mut() {
            parent.child_us += dur_us;
        }
        let key = frame.key;
        let ts_us = frame.start.duration_since(s.epoch).as_micros() as u64;
        let st = &mut reg.spans[key as usize];
        st.count += 1;
        st.total_us += dur_us;
        st.self_us += self_us;
        st.max_us = st.max_us.max(dur_us);
        st.hist.record(dur_us);
        let tid = reg.tid_index(tid);
        reg.push_event(TraceEvent {
            key,
            tid,
            ts_us,
            dur_us: Some(dur_us),
            args: None,
        });
    }
}

/// A point-in-time capture of a recorder's counters and histograms,
/// taken with [`Recorder::snapshot`]. Subtract an earlier snapshot to
/// get the activity in between — the building block for per-cycle
/// rates and watchdogs that must not reach into the registry.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Histogram>,
}

impl ObsSnapshot {
    /// Counter value at capture time (0 when the name is absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value histogram at capture time, if it had samples.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Span-duration histogram (µs) at capture time, if the span ever
    /// completed.
    pub fn span_hist(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name)
    }

    /// All counter names captured, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// The activity between `earlier` and this snapshot: counters
    /// subtract saturating; histograms subtract bucket-wise (extrema of
    /// a diffed histogram are bucket-edge approximations — exact counts
    /// and sums, min/max only to bucket resolution). Names absent from
    /// `earlier` carry over whole; empty diffs are dropped.
    pub fn delta_since(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        let mut out = ObsSnapshot::default();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(name));
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        let diff_map = |now: &BTreeMap<String, Histogram>,
                        then: &BTreeMap<String, Histogram>,
                        into: &mut BTreeMap<String, Histogram>| {
            for (name, h) in now {
                let d = match then.get(name) {
                    Some(prev) => h.saturating_diff(prev),
                    None => h.clone(),
                };
                if d.count() > 0 {
                    into.insert(name.clone(), d);
                }
            }
        };
        diff_map(&self.hists, &earlier.hists, &mut out.hists);
        diff_map(&self.spans, &earlier.spans, &mut out.spans);
        out
    }
}

/// Format an `f64` the way the JSON exports need: integral values
/// without a trailing `.0` explosion, non-finite values as `null`.
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let r = Recorder::off();
        let k = r.key("anything");
        r.count(k, 5);
        r.observe(k, 10);
        let _g = r.span(k);
        drop(_g);
        assert!(!r.is_enabled());
        assert_eq!(r.counter_value("anything"), 0);
        assert!(r.names().is_empty());
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let r = Recorder::enabled();
        let k = r.key("hits");
        r.count(k, 2);
        r.count(k, 3);
        assert_eq!(r.counter_value("hits"), 5);
        let h = r.key("sizes");
        r.observe(h, 4);
        r.observe(h, 16);
        let snap = r.histogram("sizes").unwrap();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 16);
    }

    #[test]
    fn interning_is_stable() {
        let r = Recorder::enabled();
        let a = r.key("x");
        let b = r.key("x");
        assert_eq!(a, b);
        let c = r.key("y");
        assert_ne!(a, c);
    }

    #[test]
    fn span_nesting_charges_self_time_to_the_right_level() {
        let r = Recorder::enabled();
        let outer = r.key("outer");
        let inner = r.key("inner");
        {
            let _o = r.span(outer);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _i = r.span(inner);
                std::thread::sleep(std::time::Duration::from_millis(8));
            }
        }
        let so = r.span_stats("outer").unwrap();
        let si = r.span_stats("inner").unwrap();
        assert_eq!(so.count, 1);
        assert_eq!(si.count, 1);
        // The outer span's total covers the inner, but its self-time
        // excludes it: rollup ≥ inner total, self < inner total.
        assert!(so.total_us >= si.total_us);
        assert!(so.self_us <= so.total_us - si.total_us + 1_000);
        assert!(si.self_us == si.total_us);
        // Inner slept ~8ms; outer self slept ~2ms. Generous bounds to
        // stay robust on loaded machines.
        assert!(si.total_us >= 7_000, "inner {}us", si.total_us);
        assert!(so.self_us < si.total_us, "outer self should exclude inner");
    }

    #[test]
    fn snapshot_delta_isolates_new_activity() {
        let r = Recorder::enabled();
        let k = r.key("hits");
        let h = r.key("sizes");
        r.count(k, 3);
        r.observe(h, 8);
        let before = r.snapshot();
        assert_eq!(before.counter("hits"), 3);
        r.count(k, 4);
        r.observe(h, 32);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("hits"), 4, "delta counts only new activity");
        let dh = delta.histogram("sizes").expect("new samples survive");
        assert_eq!(dh.count(), 1);
        // Extrema re-derived at bucket resolution: 32 lands in [32, 64).
        assert!((32..64).contains(&dh.max()), "max {}", dh.max());
        // A quiet window yields an empty delta: zero counters and empty
        // histograms are dropped rather than reported as no-ops.
        let quiet = r.snapshot().delta_since(&r.snapshot());
        assert_eq!(quiet.counter_names().count(), 0);
        assert!(quiet.histogram("sizes").is_none());
    }

    #[test]
    fn snapshot_on_an_off_recorder_is_empty() {
        let r = Recorder::off();
        let snap = r.snapshot();
        assert_eq!(snap.counter_names().count(), 0);
        assert_eq!(snap.counter("anything"), 0);
    }

    #[test]
    fn audit_ring_stamps_cycles_and_bounds_growth() {
        let r = Recorder::enabled();
        r.audit_begin_cycle(7);
        r.audit(
            AuditSubject::Job(3),
            None,
            Some(2),
            "solve.step3",
            "priority-place",
        );
        r.audit_begin_cycle(8);
        r.audit(
            AuditSubject::Job(3),
            Some(2),
            Some(5),
            "solve.step4",
            "rebalance-deficit",
        );
        let entries = r.audit_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].cycle, 7);
        assert_eq!(entries[1].cycle, 8);
        assert_eq!(entries[1].from, Some(2));
        assert_eq!(r.audit_dropped(), 0);
    }

    #[test]
    fn slo_board_tracks_registered_specs() {
        let r = Recorder::enabled();
        let id = r.slo_register("web", SloSpec::default());
        // Re-registering the same name returns the same slot.
        assert_eq!(r.slo_register("web", SloSpec::default()), id);
        let sample = SloSample {
            satisfied: 0.5,
            deficit_mhz: 100.0,
            ..SloSample::default()
        };
        let attr = Attribution {
            capacity_mhz: 100.0,
            ..Attribution::default()
        };
        r.slo_observe(id, &sample, &attr);
        let board = r.slo_board();
        assert_eq!(board.len(), 1);
        assert_eq!(board[0].0, "web");
        assert_eq!(board[0].1.cycles(), 1);
        assert_eq!(board[0].1.violations(), 1);
    }

    #[test]
    fn emit_buffers_instant_events() {
        let r = Recorder::enabled();
        let k = r.key("event");
        r.emit(k, &[("a", 1.0), ("b", 2.5)]);
        let n = r
            .with_registry(|reg| reg.events.iter().filter(|e| e.dur_us.is_none()).count())
            .unwrap();
        assert_eq!(n, 1);
    }
}
