//! # slaq-sim — the virtualized data-center simulator
//!
//! The substitution for the authors' physical testbed (DESIGN.md §2, S8):
//! a fluid discrete-event simulator of a cluster of nodes running two
//! workload classes under controller-issued placements.
//!
//! What it preserves of the real system (the behaviours the paper's
//! algorithms actually exercise):
//!
//! * **Contended CPU** — each node's power is divided among the VMs the
//!   controller placed there; guarantees are enforced and spare capacity
//!   is redistributed work-conservingly (jobs first, capped at their
//!   maximum speed, then transactional instances) — `cluster` module;
//! * **Memory capacity** — placements that overcommit memory are rejected
//!   (the paper's 3-jobs-per-node constraint);
//! * **Placement-change costs** — job start/resume/migration each blocks
//!   the affected job for a configurable latency;
//! * **Workload dynamics** — Poisson job arrivals, measured transactional
//!   response times from the same processor-sharing law the performance
//!   model predicts with, online demand estimation with observation
//!   noise living in the estimator path.
//!
//! The control interface is the [`Controller`] trait: every control cycle
//! the simulator hands the controller its observations and applies the
//! returned [`Placement`](slaq_placement::Placement) — `slaq-core` provides the paper's controller,
//! and the baselines live alongside it. Each control cycle is staged as
//! **sense → solve → actuate**; the `snapshot` module's
//! [`SensingSnapshot`] is the owned, `Send` capture of the sensed inputs
//! that lets `slaq-core`'s pipelined control plane overlap the solve
//! stage with simulation instead of solving inline.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apps;
pub mod chaos;
pub mod cluster;
pub mod metrics;
pub mod simulator;
pub mod snapshot;

pub use apps::{AppObservation, TransactionalRuntime};
pub use chaos::{
    CapacityDip, ChaosSpec, DegradationSpec, ElasticitySpec, FaultPlan, FlapSpec, FlashCrowdSpec,
    FloodSpec, InvariantChecker, OvercommitSpec, ZoneStormSpec,
};
pub use cluster::effective_speeds;
pub use metrics::{MetricKey, MetricsSink};
pub use simulator::{
    ControlInputs, Controller, NodeOutage, OverheadConfig, SimConfig, SimReport, Simulator,
};
pub use snapshot::{DeltaTracker, SensingSnapshot};
