//! Problem statement types consumed by the placement solver.

use serde::{Deserialize, Serialize};
use slaq_types::{AppId, ClusterSpec, CpuMhz, JobId, MemMb, NodeId};

/// Capacity of one node as the solver sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCapacity {
    /// Node identity.
    pub id: NodeId,
    /// Total CPU power.
    pub cpu: CpuMhz,
    /// Memory available to workload VMs.
    pub mem: MemMb,
}

impl NodeCapacity {
    /// Derive solver capacities from a cluster spec.
    pub fn from_cluster(cluster: &ClusterSpec) -> Vec<NodeCapacity> {
        cluster
            .nodes()
            .iter()
            .map(|n| NodeCapacity {
                id: n.id,
                cpu: n.cpu_capacity(),
                mem: n.mem,
            })
            .collect()
    }
}

/// One transactional application's placement request for this cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequest {
    /// Application identity.
    pub id: AppId,
    /// Cluster-wide CPU target from the equalizer.
    pub demand: CpuMhz,
    /// Memory footprint of each instance.
    pub mem_per_instance: MemMb,
    /// Lower bound on instance count (kept warm even when idle).
    pub min_instances: u32,
    /// Upper bound on instance count.
    pub max_instances: u32,
    /// Per-node affinity bonuses (MHz scale), id-sorted, from the
    /// routing tier's warmth scores: the solver's grow steps add a
    /// node's bonus to its residual CPU when ordering candidates, so
    /// warm instances stop being interchangeable with cold ones.
    /// Empty (the default) keeps candidate ordering bit-identical to
    /// the affinity-free solver.
    pub affinity: Vec<(NodeId, f64)>,
}

/// One long-running job's placement request for this cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Job identity.
    pub id: JobId,
    /// CPU target from the equalizer (≤ the job's maximum speed; zero for
    /// jobs whose SLA no longer benefits from CPU).
    pub demand: CpuMhz,
    /// Memory footprint of the job's VM while running.
    pub mem: MemMb,
    /// Node where the job currently runs, if it is running — placement is
    /// sticky, and moving away from this node counts as a migration.
    pub running_on: Option<NodeId>,
    /// Affinity hint for suspended jobs: the node whose disk holds the
    /// image (resuming elsewhere is allowed and counts one change either
    /// way).
    pub affinity: Option<NodeId>,
    /// Placement priority (higher places first). The manager passes a
    /// utility-urgency score; ties break by id for determinism.
    pub priority: f64,
}

/// Solver tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementConfig {
    /// Cap on disruptive actions per cycle (job starts/resumes/migrations/
    /// suspensions and instance starts/stops). `None` = unbounded. Keeping
    /// an entity where it already is costs nothing.
    pub max_changes: Option<usize>,
    /// A placed job may be evicted (suspended) in favour of an unplaced
    /// one only when the victim job's priority is lower by at least this
    /// gap — hysteresis against churn. (Evictions still consume change
    /// budget.)
    pub evict_priority_gap: f64,
    /// MHz granularity used when scaling fluid demands to integer flow
    /// capacities. 1.0 (default) loses nothing at cluster scale.
    pub mhz_unit: f64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            max_changes: None,
            evict_priority_gap: 0.0,
            mhz_unit: 1.0,
        }
    }
}

/// A full placement problem instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlacementProblem {
    /// Node capacities.
    pub nodes: Vec<NodeCapacity>,
    /// Transactional requests.
    pub apps: Vec<AppRequest>,
    /// Job requests.
    pub jobs: Vec<JobRequest>,
    /// Solver configuration.
    pub config: PlacementConfig,
}

impl PlacementProblem {
    /// Total CPU across nodes.
    pub fn total_cpu(&self) -> CpuMhz {
        self.nodes.iter().map(|n| n.cpu).sum()
    }

    /// Index of a node id within `nodes` (ids are expected dense but the
    /// solver does not require it).
    pub fn node_index(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_capacity_from_cluster() {
        let cluster = ClusterSpec::homogeneous(3, 4, CpuMhz::new(3000.0), MemMb::new(4096));
        let caps = NodeCapacity::from_cluster(&cluster);
        assert_eq!(caps.len(), 3);
        assert_eq!(caps[1].cpu, CpuMhz::new(12_000.0));
        assert_eq!(caps[2].mem, MemMb::new(4096));
        assert_eq!(caps[0].id, NodeId::new(0));
    }

    #[test]
    fn node_index_handles_sparse_ids() {
        let p = PlacementProblem {
            nodes: vec![
                NodeCapacity {
                    id: NodeId::new(5),
                    cpu: CpuMhz::new(1.0),
                    mem: MemMb::new(1),
                },
                NodeCapacity {
                    id: NodeId::new(9),
                    cpu: CpuMhz::new(2.0),
                    mem: MemMb::new(2),
                },
            ],
            apps: vec![],
            jobs: vec![],
            config: PlacementConfig::default(),
        };
        assert_eq!(p.node_index(NodeId::new(9)), Some(1));
        assert_eq!(p.node_index(NodeId::new(0)), None);
        assert_eq!(p.total_cpu(), CpuMhz::new(3.0));
    }
}
