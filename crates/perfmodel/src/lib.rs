//! # slaq-perfmodel — transactional performance model
//!
//! The paper's transactional workloads are clustered web applications
//! managed to a *response-time* goal. The authors' prototype derives CPU
//! demand from a performance model fed by a work profiler (WebSphere XD's
//! flow controller; see references \[2\] and \[5\] of the paper). That stack is
//! proprietary, so this crate substitutes the standard open
//! **M/G/1 processor-sharing** model with the same interface:
//!
//! * inputs — observed request arrival rate λ and per-request service
//!   demand (estimated online by [`DemandEstimator`]);
//! * outputs — predicted response time for a CPU allocation
//!   ([`PsQueue::response_time`]), the allocation needed to meet a
//!   response-time target ([`PsQueue::cpu_for_response_time`]), and a
//!   monotone utility-of-CPU curve ([`TransactionalModel`]) consumed by the
//!   equalizer in `slaq-utility`.
//!
//! The processor-sharing discipline is the textbook abstraction of a
//! multi-threaded application server, and its closed forms make the
//! utility curve's inverse exact — no tabulation error in the controller.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod estimator;
pub mod queueing;
pub mod routing;
pub mod transactional;

pub use estimator::DemandEstimator;
pub use queueing::PsQueue;
pub use routing::{aggregate_response_time, split_load, warm_work_discount};
pub use transactional::{TransactionalModel, TransactionalSpec};
